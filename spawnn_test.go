package cool_test

import (
	"sync/atomic"
	"testing"

	cool "github.com/coolrts/cool"
)

// spawnNArms lists the three scheduler arms SpawnN must behave
// identically on: the simulator (where SpawnN is by construction the
// plain spawn loop), the native deque backend (one batch publish), and
// the native mutex-queue A/B arm (per-child inserts).
var spawnNArms = []struct {
	name  string
	b     cool.Backend
	mutex bool
}{
	{"sim", cool.BackendSim, false},
	{"native-deque", cool.BackendNative, false},
	{"native-mutex", cool.BackendNative, true},
}

// TestSpawnNRunsEveryIndex asserts the batched spawn contract on every
// arm: each index in [0, n) executes exactly once, nested WaitFor
// scoping holds (children finish before the waitfor returns), and a
// zero or negative n spawns nothing.
func TestSpawnNRunsEveryIndex(t *testing.T) {
	for _, arm := range spawnNArms {
		arm := arm
		t.Run(arm.name, func(t *testing.T) {
			rt, err := cool.NewRuntime(cool.Config{
				Processors: 4,
				Backend:    arm.b,
				Sched:      cool.SchedPolicy{MutexQueue: arm.mutex},
			})
			if err != nil {
				t.Fatal(err)
			}
			const n = 500
			var ran [n]int32
			var nested atomic.Int64
			err = rt.Run(func(ctx *cool.Ctx) {
				ctx.WaitFor(func() {
					ctx.SpawnN("leaf", n, func(c *cool.Ctx, i int) {
						atomic.AddInt32(&ran[i], 1)
						if i%50 == 0 {
							// A batch member spawning its own nested batch
							// exercises SpawnN from a non-root context.
							c.WaitFor(func() {
								c.SpawnN("nested", 3, func(_ *cool.Ctx, _ int) {
									nested.Add(1)
								}, nil)
							})
						}
					}, nil)
					ctx.SpawnN("none", 0, func(*cool.Ctx, int) {
						t.Error("SpawnN(0) spawned a task")
					}, nil)
				})
				for i := range ran {
					if atomic.LoadInt32(&ran[i]) != 1 {
						t.Errorf("index %d ran %d times before WaitFor returned", i, ran[i])
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := nested.Load(); got != 3*(n/50) {
				t.Fatalf("nested tasks ran %d times, want %d", got, 3*(n/50))
			}
			r := rt.Report()
			if want := int64(n + 3*(n/50)); r.Total.Spawns != want {
				t.Errorf("Spawns = %d, want %d", r.Total.Spawns, want)
			}
			// SpawnBatches is a native-deque-only counter: one per SpawnN
			// burst there, zero on the simulator and the mutex arm.
			batches := r.Total.SpawnBatches
			if arm.b == cool.BackendNative && !arm.mutex {
				if batches == 0 {
					t.Error("native deque arm recorded no SpawnBatches")
				}
			} else if batches != 0 {
				t.Errorf("%s arm recorded %d SpawnBatches, want 0", arm.name, batches)
			}
		})
	}
}

// TestSpawnNOptionsApplied asserts the per-index options callback is
// honored: processor affinity pins every batch member to its requested
// processor (stealing disabled so placement is observable), on all
// three arms.
func TestSpawnNOptionsApplied(t *testing.T) {
	const procs = 4
	for _, arm := range spawnNArms {
		arm := arm
		t.Run(arm.name, func(t *testing.T) {
			rt, err := cool.NewRuntime(cool.Config{
				Processors: procs,
				Backend:    arm.b,
				Sched:      cool.SchedPolicy{MutexQueue: arm.mutex, NoStealing: true},
			})
			if err != nil {
				t.Fatal(err)
			}
			const n = 64
			var ranOn [n]int32
			err = rt.Run(func(ctx *cool.Ctx) {
				ctx.WaitFor(func() {
					ctx.SpawnN("pin", n, func(c *cool.Ctx, i int) {
						atomic.StoreInt32(&ranOn[i], int32(c.ProcID()))
					}, func(i int) []cool.SpawnOpt {
						return []cool.SpawnOpt{cool.OnProcessor(i % procs)}
					})
				})
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range ranOn {
				if got, want := int(ranOn[i]), i%procs; got != want {
					t.Errorf("index %d ran on processor %d, want %d", i, got, want)
				}
			}
		})
	}
}

// TestSpawnNTaskAffinitySets asserts batch members carrying task
// affinity land in sets without ever splitting one, and that the run's
// figures agree across the three arms where they are defined to agree
// (task counts; the sim arm is the reference semantics).
func TestSpawnNTaskAffinitySets(t *testing.T) {
	for _, arm := range spawnNArms {
		arm := arm
		t.Run(arm.name, func(t *testing.T) {
			rt, err := cool.NewRuntime(cool.Config{
				Processors: 4,
				Backend:    arm.b,
				Sched:      cool.SchedPolicy{MutexQueue: arm.mutex},
			})
			if err != nil {
				t.Fatal(err)
			}
			set := rt.NewI64(8, 0)
			const n = 200
			var ran atomic.Int64
			err = rt.Run(func(ctx *cool.Ctx) {
				ctx.WaitFor(func() {
					ctx.SpawnN("member", n, func(*cool.Ctx, int) {
						ran.Add(1)
					}, func(i int) []cool.SpawnOpt {
						return []cool.SpawnOpt{cool.TaskAffinity(set.Addr(i % 8))}
					})
				})
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := ran.Load(); got != n {
				t.Fatalf("ran %d tasks, want %d", got, n)
			}
			r := rt.Report()
			if r.Total.TasksRun != n+1 {
				t.Errorf("TasksRun = %d, want %d", r.Total.TasksRun, n+1)
			}
			if r.SetSplits != 0 {
				t.Errorf("SetSplits = %d, want 0", r.SetSplits)
			}
		})
	}
}
