module github.com/coolrts/cool

go 1.22
