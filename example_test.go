package cool_test

import (
	"fmt"

	cool "github.com/coolrts/cool"
)

// ExampleRuntime demonstrates the basic shape of a COOL program: placed
// allocation, parallel tasks with object affinity, and a waitfor join.
func ExampleRuntime() {
	rt, _ := cool.NewRuntime(cool.Config{Processors: 8})
	data := rt.NewF64Pages(1024, 0)
	for i := range data.Data {
		data.Data[i] = 1
	}
	sums := make([]float64, 8)
	_ = rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			for c := 0; c < 8; c++ {
				c := c
				part := data.Slice(c*128, (c+1)*128)
				ctx.Spawn("sum", func(t *cool.Ctx) {
					var s float64
					for _, v := range t.ReadF64Range(part, 0, part.Len()) {
						s += v
					}
					t.Compute(int64(part.Len()))
					sums[c] = s
				}, cool.ObjectAffinity(part.Base))
			}
		})
	})
	total := 0.0
	for _, s := range sums {
		total += s
	}
	fmt.Println(total)
	// Output: 1024
}

// ExampleCtx_Migrate shows COOL's object distribution: migrate() re-homes
// an object and home() reports the placement.
func ExampleCtx_Migrate() {
	rt, _ := cool.NewRuntime(cool.Config{Processors: 32})
	arr := rt.NewF64Pages(4096, 0)
	_ = rt.Run(func(ctx *cool.Ctx) {
		fmt.Println("home before:", ctx.Home(arr.Base))
		ctx.Migrate(arr.Base, int64(arr.Len())*8, 21)
		fmt.Println("home after:", ctx.Home(arr.Base))
	})
	// Output:
	// home before: 0
	// home after: 21
}

// ExampleCtx_Lock shows a COOL monitor serializing a critical section.
func ExampleCtx_Lock() {
	rt, _ := cool.NewRuntime(cool.Config{Processors: 4})
	mon := rt.NewMonitor(0)
	count := 0
	_ = rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			for i := 0; i < 10; i++ {
				ctx.Spawn("inc", func(c *cool.Ctx) {
					c.Lock(mon)
					v := count
					c.Compute(100)
					count = v + 1
					c.Unlock(mon)
				})
			}
		})
	})
	fmt.Println(count)
	// Output: 10
}
