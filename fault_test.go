package cool_test

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	cool "github.com/coolrts/cool"
)

// runFaulted executes a 32-task parallel sum on 8 processors under the
// given fault plan, spawning each task with the options variant returns.
// It reports the runtime (for counters), the per-task completion marks,
// and Run's error.
func runFaulted(t *testing.T, plan *cool.FaultPlan, variant func(part *cool.F64, i int) []cool.SpawnOpt) (*cool.Runtime, []int, error) {
	t.Helper()
	rt, err := cool.NewRuntime(cool.Config{Processors: 8, Seed: 11, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	const tasks = 32
	data := rt.NewF64Pages(tasks*512, 3)
	for i := range data.Data {
		data.Data[i] = 1
	}
	hits := make([]int, tasks)
	runErr := rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			for i := 0; i < tasks; i++ {
				i := i
				part := data.Slice(i*512, (i+1)*512)
				ctx.Spawn("worker", func(c *cool.Ctx) {
					s := 0.0
					for _, v := range c.ReadF64Range(part, 0, part.Len()) {
						s += v
					}
					c.Compute(5000)
					hits[i] += int(s) / part.Len() // 1 per completed run
				}, variant(part, i)...)
			}
		})
	})
	return rt, hits, runErr
}

func checkAllRanOnce(t *testing.T, hits []int) {
	t.Helper()
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("task %d completed %d times, want exactly 1", i, h)
		}
	}
}

func TestServerFailureEveryVariantCompletes(t *testing.T) {
	// Kill P3 mid-run (its first task is still executing, so its queue
	// holds backlog) and check every affinity variant still completes
	// each task exactly once on the survivors.
	const victim = 3
	variants := []struct {
		name   string
		pinned bool // all work targeted at the victim's queue
		opts   func(part *cool.F64, i int) []cool.SpawnOpt
	}{
		{"plain", false, func(part *cool.F64, i int) []cool.SpawnOpt { return nil }},
		{"object", true, func(part *cool.F64, i int) []cool.SpawnOpt {
			return []cool.SpawnOpt{cool.ObjectAffinity(part.Base)}
		}},
		{"taskset", false, func(part *cool.F64, i int) []cool.SpawnOpt {
			return []cool.SpawnOpt{cool.TaskAffinity(part.Base - int64(i*512*8))}
		}},
		{"processor", true, func(part *cool.F64, i int) []cool.SpawnOpt {
			return []cool.SpawnOpt{cool.OnProcessor(victim)}
		}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			plan := cool.NewFaultPlan().FailProcessor(victim, 4000)
			rt, hits, err := runFaulted(t, plan, v.opts)
			if err != nil {
				t.Fatal(err)
			}
			checkAllRanOnce(t, hits)
			rep := rt.Report()
			if v.pinned && rep.Total.Redistributed == 0 {
				t.Fatal("no tasks redistributed off the failed server")
			}
			if v.pinned && rep.Per[victim].Redistributed != rep.Total.Redistributed {
				t.Fatalf("redistribution charged to %+v, want all on P%d", rep.Total.Redistributed, victim)
			}
			// The dead server must not have absorbed work after t=4000:
			// with 5000-cycle tasks it can have completed at most the one
			// it was running.
			if rep.Per[victim].TasksRun > 1 {
				t.Fatalf("failed server ran %d tasks, want <= 1", rep.Per[victim].TasksRun)
			}
		})
	}
}

func TestFaultPlanDeterminism(t *testing.T) {
	// Acceptance criterion: identical seed + plan => byte-identical
	// simulated cycles and performance-monitor snapshots.
	run := func() (int64, cool.Report) {
		plan := cool.NewFaultPlan().
			SlowProcessor(1, 0, 4, 0).
			StallProcessor(2, 2000, 3000).
			FailProcessor(5, 6000).
			DegradeMemory(1, 1000, 4)
		rt, hits, err := runFaulted(t, plan, func(part *cool.F64, i int) []cool.SpawnOpt {
			return []cool.SpawnOpt{cool.ObjectAffinity(part.Base)}
		})
		if err != nil {
			t.Fatal(err)
		}
		checkAllRanOnce(t, hits)
		return rt.ElapsedCycles(), rt.Report()
	}
	c1, r1 := run()
	c2, r2 := run()
	if c1 != c2 {
		t.Fatalf("cycles diverged under faults: %d vs %d", c1, c2)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("perfmon reports diverged under faults:\n%v\nvs\n%v", r1, r2)
	}
	if r1.Total.FaultEvents == 0 {
		t.Fatal("no fault events recorded in counters")
	}
}

func TestRandomFaultPlanSeedStability(t *testing.T) {
	a := cool.RandomFaultPlan(99, 8, 2, 6)
	b := cool.RandomFaultPlan(99, 8, 2, 6)
	if a.Len() != 6 || b.Len() != 6 {
		t.Fatalf("plan lengths %d, %d, want 6", a.Len(), b.Len())
	}
	rt1, _, err1 := runFaulted(t, a, func(part *cool.F64, i int) []cool.SpawnOpt { return nil })
	rt2, _, err2 := runFaulted(t, b, func(part *cool.F64, i int) []cool.SpawnOpt { return nil })
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if rt1.ElapsedCycles() != rt2.ElapsedCycles() {
		t.Fatalf("same random seed gave different runs: %d vs %d", rt1.ElapsedCycles(), rt2.ElapsedCycles())
	}
}

func TestInjectedTaskPanicTyped(t *testing.T) {
	run := func() *cool.TaskPanicError {
		plan := cool.NewFaultPlan().PanicTask("worker", 7)
		_, _, err := runFaulted(t, plan, func(part *cool.F64, i int) []cool.SpawnOpt { return nil })
		var pe *cool.TaskPanicError
		if !errors.As(err, &pe) {
			t.Fatalf("err = %v (%T), want *cool.TaskPanicError", err, err)
		}
		return pe
	}
	pe := run()
	if pe.Task != "worker" || !pe.Injected {
		t.Fatalf("panic error = %+v, want injected panic in worker", pe)
	}
	if !strings.Contains(pe.Error(), "injected fault") {
		t.Fatalf("message %q missing injection marker", pe.Error())
	}
	// Same plan again: the panic strikes the same task on the same
	// processor at the same simulated cycle.
	pe2 := run()
	if pe.Proc != pe2.Proc || pe.Time != pe2.Time {
		t.Fatalf("injected panic not deterministic: P%d@%d vs P%d@%d", pe.Proc, pe.Time, pe2.Proc, pe2.Time)
	}
}

func TestNaturalTaskPanicTyped(t *testing.T) {
	rt := newRT(t, 4)
	err := rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			ctx.Spawn("bad", func(c *cool.Ctx) {
				c.Compute(250)
				panic("invariant violated")
			})
		})
	})
	var pe *cool.TaskPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *cool.TaskPanicError", err, err)
	}
	if pe.Task != "bad" || pe.Injected || pe.Time < 250 {
		t.Fatalf("panic error = %+v, want natural panic in bad at t>=250", pe)
	}
	if !strings.Contains(err.Error(), "invariant violated") || pe.Stack == "" {
		t.Fatalf("error lost panic payload or stack: %v", err)
	}
}

func TestCycleLimitWatchdog(t *testing.T) {
	rt, err := cool.NewRuntime(cool.Config{Processors: 2, CycleLimit: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	err = rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			ctx.Spawn("spin", func(c *cool.Ctx) {
				for { // livelock: only the watchdog can end the run
					c.Compute(1000)
				}
			})
		})
	})
	var np *cool.NoProgressError
	if !errors.As(err, &np) {
		t.Fatalf("err = %v (%T), want *cool.NoProgressError", err, err)
	}
	// Time is the last consistently-simulated cycle before the limit
	// would have been crossed.
	if np.CycleLimit != 100_000 || np.Time == 0 || np.Time > 100_000 || np.LiveTasks < 1 {
		t.Fatalf("watchdog error = %+v", np)
	}
	if len(np.Clocks) != 2 || !strings.Contains(np.Snapshot, "P0") {
		t.Fatalf("watchdog missing clock/queue snapshot: %+v", np)
	}
}

func TestMemoryDegradationSlowsRun(t *testing.T) {
	cycles := func(plan *cool.FaultPlan) int64 {
		rt, hits, err := runFaulted(t, plan, func(part *cool.F64, i int) []cool.SpawnOpt { return nil })
		if err != nil {
			t.Fatal(err)
		}
		checkAllRanOnce(t, hits)
		return rt.ElapsedCycles()
	}
	healthy := cycles(nil)
	degraded := cycles(cool.NewFaultPlan().DegradeMemory(0, 0, 8))
	if degraded <= healthy {
		t.Fatalf("degraded memory ran in %d cycles, healthy %d; want slower", degraded, healthy)
	}
}

func TestInvalidConfigReturnsError(t *testing.T) {
	bad := []cool.Config{
		{Processors: 0},
		{Processors: -4},
		{Processors: 4, ClusterSize: -1},
		{Processors: 4, Quantum: -5},
		{Processors: 4, Sched: cool.SchedPolicy{QueueArraySize: -1}},
		{Processors: 4, TraceCapacity: -1},
		{Processors: 4, CycleLimit: -1},
	}
	for _, cfg := range bad {
		if _, err := cool.NewRuntime(cfg); err == nil {
			t.Fatalf("NewRuntime(%+v) accepted invalid config", cfg)
		}
	}
}

func TestInvalidFaultPlanRejected(t *testing.T) {
	bad := []*cool.FaultPlan{
		cool.NewFaultPlan().SlowProcessor(9, 0, 4, 0),  // proc out of range
		cool.NewFaultPlan().SlowProcessor(1, 0, 1, 0),  // factor < 2
		cool.NewFaultPlan().StallProcessor(1, -5, 100), // negative time
		cool.NewFaultPlan().StallProcessor(1, 0, 0),    // zero stall
		cool.NewFaultPlan().DegradeMemory(7, 0, 4),     // cluster out of range
		func() *cool.FaultPlan { // no survivors
			p := cool.NewFaultPlan()
			for i := 0; i < 8; i++ {
				p.FailProcessor(i, 100)
			}
			return p
		}(),
	}
	for i, plan := range bad {
		_, err := cool.NewRuntime(cool.Config{Processors: 8, Faults: plan})
		if err == nil || !strings.Contains(err.Error(), "Faults") {
			t.Fatalf("plan %d: err = %v, want Config.Faults validation error", i, err)
		}
	}
}

func TestBadAllocationSurfacesFromRun(t *testing.T) {
	rt := newRT(t, 4)
	_ = rt.NewF64(0, 0) // invalid, but must not panic
	err := rt.Run(func(ctx *cool.Ctx) { ctx.Compute(10) })
	if err == nil || !strings.Contains(err.Error(), "allocation size") {
		t.Fatalf("err = %v, want allocation-size setup error", err)
	}
}

func TestBadMigrateSurfacesFromRun(t *testing.T) {
	rt := newRT(t, 4)
	arr := rt.NewF64Pages(4096, 0)
	rt.Migrate(arr.Base, -8, 1) // invalid, but must not panic
	err := rt.Run(func(ctx *cool.Ctx) { ctx.Compute(10) })
	if err == nil || !strings.Contains(err.Error(), "must be positive") {
		t.Fatalf("err = %v, want migrate setup error", err)
	}
}
