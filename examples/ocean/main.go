// Ocean-style grid relaxation, transcribed from Figure 5 of the paper:
// each grid is partitioned into regions; the distribute() step migrates
// corresponding regions of all grids to the same processor's memory, and
// each region task carries the default affinity for its region, so
// every sweep runs where its data lives.
package main

import (
	"fmt"
	"log"

	cool "github.com/coolrts/cool"
)

const (
	n       = 128 // grid is n×n
	regions = 16
	grids   = 4
	steps   = 3
	procs   = 16
)

func simulate(distribute, hints bool) (int64, cool.Report) {
	rt, err := cool.NewRuntime(cool.Config{
		Processors: procs,
		Sched:      cool.SchedPolicy{IgnoreHints: !hints},
	})
	if err != nil {
		log.Fatal(err)
	}
	gs := make([]*cool.F64, grids)
	for g := range gs {
		gs[g] = rt.NewF64Pages(n*n, 0)
		for i := range gs[g].Data {
			gs[g].Data[i] = float64((i + g) % 13)
		}
	}
	rows := n / regions
	if distribute {
		// Figure 5's distribute(): region r of every grid to processor r.
		for _, g := range gs {
			for r := 0; r < regions; r++ {
				rt.Migrate(g.Addr(r*rows*n), int64(rows*n*8), r)
			}
		}
	}

	err = rt.Run(func(ctx *cool.Ctx) {
		for s := 0; s < steps; s++ {
			for g := 1; g < grids; g++ {
				src, dst := gs[g-1], gs[g]
				ctx.WaitFor(func() {
					for r := 0; r < regions; r++ {
						r := r
						ctx.Spawn("laplace", func(c *cool.Ctx) {
							lo, hi := max(r*rows, 1), min((r+1)*rows, n-1)
							for i := lo; i < hi; i++ {
								up := c.ReadF64Range(src, (i-1)*n, i*n)
								mid := c.ReadF64Range(src, i*n, (i+1)*n)
								down := c.ReadF64Range(src, (i+1)*n, (i+2)*n)
								out := c.WriteF64Range(dst, i*n, (i+1)*n)
								for j := 1; j < n-1; j++ {
									out[j] = 0.2 * (mid[j] + mid[j-1] + mid[j+1] + up[j] + down[j])
								}
								c.Compute(int64(5 * n))
							}
						}, cool.OnObject(dst.Addr(r*rows*n))) // default affinity for the region
					}
				})
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	return rt.ElapsedCycles(), rt.Report()
}

func main() {
	base, baseRep := simulate(false, false)
	distr, distrRep := simulate(true, true)
	fmt.Printf("base:                %9d cycles, miss rate %.4f, %4.1f%% local\n",
		base, baseRep.Total.MissRate(), 100*baseRep.Total.LocalFraction())
	fmt.Printf("distribute+affinity: %9d cycles, miss rate %.4f, %4.1f%% local\n",
		distr, distrRep.Total.MissRate(), 100*distrRep.Total.LocalFraction())
	fmt.Printf("improvement: %.2fx\n", float64(base)/float64(distr))
}
