// Gaussian elimination, transcribed from Figure 3 of the paper: the
// update of a destination column by a source column is a parallel task
// declaring affinity(src, TASK) — updates sharing a source run back to
// back for cache reuse — and affinity(dst, OBJECT) — the task runs on the
// processor whose memory holds the destination column. Columns are
// distributed round-robin with placed allocation.
package main

import (
	"fmt"
	"log"

	cool "github.com/coolrts/cool"
)

const (
	n     = 192
	procs = 16
)

func eliminate(opts func(src, dst *cool.F64) []cool.SpawnOpt, ignoreHints bool) int64 {
	rt, err := cool.NewRuntime(cool.Config{
		Processors: procs,
		Sched:      cool.SchedPolicy{IgnoreHints: ignoreHints},
	})
	if err != nil {
		log.Fatal(err)
	}
	// new(j): column j allocated in processor j's local memory.
	cols := make([]*cool.F64, n)
	for j := range cols {
		cols[j] = rt.NewF64Pages(n, j)
		for i := 0; i < n; i++ {
			if i == j {
				cols[j].Data[i] = n
			} else {
				cols[j].Data[i] = float64((i+2*j)%5) - 2
			}
		}
	}

	err = rt.Run(func(ctx *cool.Ctx) {
		for k := 0; k < n-1; k++ {
			src := cols[k]
			ctx.WaitFor(func() {
				for j := k + 1; j < n; j++ {
					dst := cols[j]
					kk := k
					ctx.Spawn("update", func(c *cool.Ctx) {
						s := c.ReadF64Range(src, kk, n)
						d := c.WriteF64Range(dst, kk, n)
						m := d[0] / s[0]
						d[0] = m
						for i := 1; i < len(d); i++ {
							d[i] -= m * s[i]
						}
						c.Compute(int64(2 * len(d)))
					}, opts(src, dst)...)
				}
			})
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	return rt.ElapsedCycles()
}

func main() {
	base := eliminate(func(src, dst *cool.F64) []cool.SpawnOpt { return nil }, true)
	hinted := eliminate(func(src, dst *cool.F64) []cool.SpawnOpt {
		return []cool.SpawnOpt{cool.TaskAffinity(src.Base), cool.ObjectAffinity(dst.Base)}
	}, false)
	fmt.Printf("round-robin, no hints:       %9d cycles\n", base)
	fmt.Printf("TASK(src) + OBJECT(dst):     %9d cycles\n", hinted)
	fmt.Printf("affinity speedup: %.2fx on %d processors\n", float64(base)/float64(hinted), procs)
}
