// Pipeline: COOL's synchronization constructs — a monitor with condition
// variables guarding a bounded buffer between producer and consumer
// tasks, all in simulated time. The consumers park (yielding their
// processors) when the buffer runs dry and are signalled awake by
// producers; the report shows how little processor time the blocking
// costs.
package main

import (
	"fmt"
	"log"

	cool "github.com/coolrts/cool"
)

const (
	producers = 2
	consumers = 4
	items     = 200
	capacity  = 8
)

func main() {
	rt, err := cool.NewRuntime(cool.Config{Processors: 8})
	if err != nil {
		log.Fatal(err)
	}

	// The bounded buffer lives in simulated shared memory.
	buf := rt.NewI64(capacity, 0)
	var (
		head, tail, count int
		produced          int
		consumed          []int64
	)
	mon := rt.NewMonitor(buf.Base)
	notFull := &cool.Cond{}
	notEmpty := &cool.Cond{}
	done := items * producers

	err = rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			for p := 0; p < producers; p++ {
				p := p
				ctx.Spawn("producer", func(c *cool.Ctx) {
					for i := 0; i < items; i++ {
						c.Compute(300) // manufacture an item
						c.Lock(mon)
						for count == capacity {
							c.Wait(notFull, mon)
						}
						c.WriteI64(buf, tail, int64(p*items+i))
						tail = (tail + 1) % capacity
						count++
						c.Signal(notEmpty)
						c.Unlock(mon)
					}
				})
			}
			for q := 0; q < consumers; q++ {
				ctx.Spawn("consumer", func(c *cool.Ctx) {
					for {
						c.Lock(mon)
						for count == 0 && produced < done {
							c.Wait(notEmpty, mon)
						}
						if count == 0 && produced >= done {
							c.Broadcast(notEmpty) // wake any sibling still parked
							c.Unlock(mon)
							return
						}
						v := c.ReadI64(buf, head)
						head = (head + 1) % capacity
						count--
						produced++
						c.Signal(notFull)
						c.Unlock(mon)
						c.Compute(700) // digest the item
						consumed = append(consumed, v)
					}
				})
			}
		})
	})
	if err != nil {
		log.Fatal(err)
	}

	seen := map[int64]bool{}
	for _, v := range consumed {
		if seen[v] {
			log.Fatalf("item %d consumed twice", v)
		}
		seen[v] = true
	}
	rep := rt.Report()
	fmt.Printf("consumed %d/%d items exactly once\n", len(consumed), done)
	fmt.Printf("simulated time %d cycles, utilization %.0f%%, %d blocking acquisitions\n",
		rep.Cycles, 100*rep.Utilization(), rep.Total.LockBlocks)
}
