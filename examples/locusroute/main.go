// LocusRoute-style processor affinity, transcribed from Figure 9 of the
// paper: a shared cost array is viewed as geographic regions, each
// conceptually assigned to a processor; a wire task is scheduled on the
// processor owning the region its midpoint falls in, so that region of
// the array stays in one cache. The example routes a synthetic batch of
// wires twice — round-robin and with the affinity hint — and reports how
// many tasks ran "at home" plus the resulting cache miss counts.
package main

import (
	"fmt"
	"log"
	"math/rand"

	cool "github.com/coolrts/cool"
)

const (
	width   = 256 // cost array cells per row
	height  = 64
	regions = 16
	wiresN  = 384
	procs   = 16
)

type wire struct{ x1, y1, x2, y2 int }

func route(useAffinity bool) cool.Report {
	rt, err := cool.NewRuntime(cool.Config{
		Processors: procs,
		Sched:      cool.SchedPolicy{IgnoreHints: !useAffinity},
	})
	if err != nil {
		log.Fatal(err)
	}
	// Column-major cost array so each region is a contiguous strip,
	// distributed across the processors' memories.
	cost := rt.NewI64Pages(width*height, 0)
	strip := width / regions
	for r := 0; r < regions; r++ {
		rt.Migrate(cost.Addr(r*strip*height), int64(strip*height*8), r)
	}

	rng := rand.New(rand.NewSource(42))
	wires := make([]wire, wiresN)
	for i := range wires {
		r := i % regions
		wires[i] = wire{
			x1: r*strip + rng.Intn(strip), y1: rng.Intn(height),
			x2: r*strip + rng.Intn(strip), y2: rng.Intn(height),
		}
	}
	// Shuffle so the spawn order carries no accidental region pattern.
	rng.Shuffle(len(wires), func(i, j int) { wires[i], wires[j] = wires[j], wires[i] })
	region := func(w wire) int { return ((w.x1 + w.x2) / 2) / strip }

	walk := func(c *cool.Ctx, w wire, visit func(idx int)) {
		for x := min(w.x1, w.x2); x <= max(w.x1, w.x2); x++ {
			visit(x*height + w.y1)
		}
		for y := min(w.y1, w.y2); y <= max(w.y1, w.y2); y++ {
			visit(w.x2*height + y)
		}
	}

	err = rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			for _, w := range wires {
				w := w
				ctx.Spawn("route", func(c *cool.Ctx) {
					// Evaluate the route cost a few times (as the real
					// router explores candidates), then lay it.
					for rep := 0; rep < 3; rep++ {
						var total int64
						walk(c, w, func(idx int) {
							c.Access(cost.Addr(idx), 8, false)
							total += cost.Data[idx]
							c.Compute(2)
						})
					}
					walk(c, w, func(idx int) {
						c.Access(cost.Addr(idx), 8, true)
						cost.Data[idx]++
						c.Compute(2)
					})
				}, cool.OnProcessor(region(w))) // Figure 9's affinity hint
			}
		})
	})
	if err != nil {
		log.Fatal(err)
	}
	return rt.Report()
}

func main() {
	base := route(false)
	aff := route(true)
	fmt.Printf("%-22s %10s %10s %10s\n", "", "cycles", "misses", "atHome")
	fmt.Printf("%-22s %10d %10d %9.0f%%\n", "round-robin:", base.Cycles, base.Total.Misses(), 100*base.Total.HomeFraction())
	fmt.Printf("%-22s %10d %10d %9.0f%%\n", "processor affinity:", aff.Cycles, aff.Total.Misses(), 100*aff.Total.HomeFraction())
}
