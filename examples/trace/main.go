// Trace: visualize what the scheduler actually did. The program runs a
// small imbalanced workload with tracing enabled, dumps the first
// scheduler events, and renders a per-processor utilization timeline —
// watch the idle processors steal the queue built up on processor 0.
package main

import (
	"fmt"
	"log"

	cool "github.com/coolrts/cool"
)

func main() {
	rt, err := cool.NewRuntime(cool.Config{Processors: 8, TraceCapacity: 1 << 16})
	if err != nil {
		log.Fatal(err)
	}
	err = rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			// Everything lands on processor 0's queue; the rest of the
			// machine has to steal for its supper.
			for i := 0; i < 24; i++ {
				i := i
				ctx.Spawn(fmt.Sprintf("job%02d", i), func(c *cool.Ctx) {
					c.Compute(int64(4000 + i*500))
				}, cool.OnProcessor(0))
			}
		})
	})
	if err != nil {
		log.Fatal(err)
	}

	events := rt.TraceEvents()
	fmt.Printf("%d scheduler events; first 12:\n", len(events))
	for _, e := range events[:12] {
		fmt.Printf("  t=%-7d P%-2d %-8s %s\n", e.Time, e.Proc, e.Kind, e.Task)
	}
	steals := 0
	for _, e := range events {
		if e.Kind == "steal" {
			steals++
		}
	}
	fmt.Printf("\n%d tasks were stolen from processor 0's queue\n", steals)
	fmt.Printf("\nutilization timeline (%d cycles total):\n%s", rt.ElapsedCycles(), rt.TraceTimeline(64))
}
