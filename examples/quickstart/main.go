// Quickstart: the smallest useful COOL program. It allocates an array in
// the simulated shared memory, distributes its chunks across the
// processors' cluster memories, and spawns one task per chunk with OBJECT
// affinity so every task runs next to its data. Run it twice — once with
// hints honoured and once ignored — and compare the simulated cycle
// counts and cache behaviour.
package main

import (
	"fmt"
	"log"

	cool "github.com/coolrts/cool"
)

const (
	procs  = 16
	chunks = 64
	chunkN = 4096 // float64s per chunk
)

func run(ignoreHints bool) (int64, cool.Report) {
	rt, err := cool.NewRuntime(cool.Config{
		Processors: procs,
		Sched:      cool.SchedPolicy{IgnoreHints: ignoreHints},
	})
	if err != nil {
		log.Fatal(err)
	}

	// One page-aligned chunk per task, scattered across the machine's
	// memories (COOL's new(proc) operator). The scatter is scrambled so
	// that no fixed spawn order accidentally aligns with it — only the
	// affinity hint can find the data.
	data := make([]*cool.F64, chunks)
	for c := range data {
		data[c] = rt.NewF64Pages(chunkN, (c*7+5)%procs)
		for i := 0; i < chunkN; i++ {
			data[c].Data[i] = float64(c*chunkN + i)
		}
	}

	sums := make([]float64, chunks)
	err = rt.Run(func(ctx *cool.Ctx) {
		// waitfor { for all chunks: spawn sum task with affinity }
		ctx.WaitFor(func() {
			for c := 0; c < chunks; c++ {
				c := c
				chunk := data[c]
				ctx.Spawn("sum", func(t *cool.Ctx) {
					var s float64
					for i := 0; i < chunk.Len(); i += 512 {
						for _, v := range t.ReadF64Range(chunk, i, i+512) {
							s += v
						}
						t.Compute(512)
					}
					sums[c] = s
				}, cool.ObjectAffinity(chunk.Base))
			}
		})
	})
	if err != nil {
		log.Fatal(err)
	}

	var total float64
	for _, s := range sums {
		total += s
	}
	want := float64(chunks*chunkN) * float64(chunks*chunkN-1) / 2
	if total != want {
		log.Fatalf("wrong sum: %v, want %v", total, want)
	}
	return rt.ElapsedCycles(), rt.Report()
}

func main() {
	base, baseRep := run(true)
	aff, affRep := run(false)
	fmt.Printf("base (hints ignored):  %9d cycles, %5.1f%% of misses local, %3.0f%% of tasks at home\n",
		base, 100*baseRep.Total.LocalFraction(), 100*baseRep.Total.HomeFraction())
	fmt.Printf("object affinity:       %9d cycles, %5.1f%% of misses local, %3.0f%% of tasks at home\n",
		aff, 100*affRep.Total.LocalFraction(), 100*affRep.Total.HomeFraction())
	fmt.Printf("affinity speedup: %.2fx\n", float64(base)/float64(aff))
}
