package cool

import (
	"fmt"

	"github.com/coolrts/cool/internal/core"
)

// RetryPolicy governs recovery from transient task-launch failures
// (FaultPlan.FailTask events and FlakyProcessor windows). When a launch
// attempt aborts, the runtime re-places the task on a different server —
// preferring a different cluster from the processor that failed, while
// keeping task-affinity sets on their home so they never split — and
// retries after an exponentially growing backoff in simulated cycles
// (wall-clock nanoseconds on the native backend). Without a policy
// (Config.Retry == nil) the first transient abort fails the run with a
// *TaskAbortError.
//
// Retries are safe because transient aborts strike only at task launch,
// before the body has executed a single operation: a retried task re-runs
// a body that has had no side effects. For the same reason panics are
// never retried — a panic (from application code or a PanicTask
// injection) strikes mid-body, after side effects may have happened, so
// it always surfaces as a *TaskPanicError without consuming retry
// budget.
type RetryPolicy struct {
	// MaxAttempts is the total number of launch attempts allowed per
	// spawn, including the first (0 = default 4).
	MaxAttempts int
	// Backoff is the delay in simulated cycles before the second
	// attempt; each further retry doubles it (0 = default 1000).
	Backoff int64
	// MaxBackoff caps the exponential backoff (0 = 64x Backoff).
	MaxBackoff int64
}

// withDefaults validates the policy and fills in defaults.
func (p RetryPolicy) withDefaults() (RetryPolicy, error) {
	if p.MaxAttempts < 0 {
		return p, fmt.Errorf("cool: Config.Retry.MaxAttempts must not be negative")
	}
	if p.Backoff < 0 {
		return p, fmt.Errorf("cool: Config.Retry.Backoff must not be negative")
	}
	if p.MaxBackoff < 0 {
		return p, fmt.Errorf("cool: Config.Retry.MaxBackoff must not be negative")
	}
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 4
	}
	if p.Backoff == 0 {
		p.Backoff = 1000
	}
	if p.MaxBackoff == 0 {
		p.MaxBackoff = 64 * p.Backoff
	}
	return p, nil
}

// delay returns the backoff before the next attempt when attempts have
// already failed (attempts >= 1).
func (p RetryPolicy) delay(attempts int) int64 {
	shift := attempts - 1
	if shift > 30 {
		shift = 30
	}
	d := p.Backoff << uint(shift)
	if d > p.MaxBackoff || d <= 0 {
		d = p.MaxBackoff
	}
	return d
}

// installRetry wires the policy into the scheduler's abort hook: count
// the attempt, pick an affinity-aware target, and schedule the
// re-enqueue once the backoff has elapsed. The target is revalidated at
// enqueue time in case the world changed during the backoff.
func (rt *Runtime) installRetry(p RetryPolicy) {
	rt.sched.SetAbortHandler(func(td *core.TaskDesc, failedOn int, now int64) bool {
		attempts := td.T.LaunchAborts()
		if attempts >= p.MaxAttempts {
			return false
		}
		tgt := rt.sched.RetryTarget(td, failedOn, attempts)
		rt.sched.TraceRetry(now, failedOn, td.T.Name, tgt)
		rt.eng.At(now+p.delay(attempts), func() {
			rt.sched.EnqueueRetry(td, tgt, rt.eng.Now())
		})
		return true
	})
}
