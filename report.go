package cool

import (
	"fmt"
	"strings"
)

// Counters are the performance-monitor event counts for one processor or
// aggregated over the machine — the analogue of the DASH hardware
// performance monitor used for the paper's cache-miss figures.
type Counters struct {
	Refs          int64 // cache-line references
	L1Hits        int64
	L2Hits        int64
	LocalMisses   int64 // misses serviced by local cluster memory
	RemoteMisses  int64 // misses serviced by remote cluster memory
	DirtyMisses   int64 // misses serviced cache-to-cache from a dirty line
	Upgrades      int64
	Invalidations int64
	Writebacks    int64
	Prefetches    int64 // prefetch issues (per line)
	PrefetchFills int64 // prefetches that brought a line in

	MemCycles     int64
	ComputeCycles int64

	TasksRun     int64
	TasksAtHome  int64 // tasks that ran on their affinity-preferred server
	Spawns       int64
	SpawnBatches int64 // SpawnN bursts published as one batch (native deque backend; zero on the simulator and the mutex-queue A/B arm)
	StealTries   int64
	StealsLocal  int64 // successful same-cluster steals
	StealsRemote int64
	SetSteals    int64
	FailedSteals int64 // steal probes that examined a victim and took nothing
	LockBlocks   int64

	// LockContention counts scheduler-internal lock acquisitions (a
	// worker's queue mutex, a set-table shard mutex) that missed their
	// TryLock fast path and had to block. Always zero on the simulator
	// (it is single-threaded); on the native backend it measures
	// contention on the decentralized placement/steal locks.
	LockContention int64

	TargetedWakes  int64 // idle wakeups limited to the first K parked processors
	BroadcastWakes int64 // idle wakeups that woke every parked processor

	FaultEvents   int64 // injected fault events that struck this processor
	Redistributed int64 // tasks drained off this (failed) server to survivors
	Retries       int64 // task launches aborted here and retried elsewhere
	GaveUp        int64 // launches whose retry budget ran out (fails the run)

	TasksShed      int64 // tasks dropped by the overload-shedding SLO layer
	DeadlineMisses int64 // tasks shed because their spawn deadline had expired
}

// Misses returns the total cache misses.
func (c Counters) Misses() int64 { return c.LocalMisses + c.RemoteMisses + c.DirtyMisses }

// MissRate returns misses per reference.
func (c Counters) MissRate() float64 {
	if c.Refs == 0 {
		return 0
	}
	return float64(c.Misses()) / float64(c.Refs)
}

// LocalFraction returns the fraction of misses serviced without crossing
// to a remote cluster (local memory plus same-cluster dirty lines count
// as local in the cache model's latency charging).
func (c Counters) LocalFraction() float64 {
	m := c.Misses()
	if m == 0 {
		return 1
	}
	return float64(c.LocalMisses) / float64(m)
}

// HomeFraction returns the fraction of tasks that executed on their
// affinity-preferred server.
func (c Counters) HomeFraction() float64 {
	if c.TasksRun == 0 {
		return 1
	}
	return float64(c.TasksAtHome) / float64(c.TasksRun)
}

// Report summarizes one simulated execution.
type Report struct {
	Cycles     int64 // parallel execution time (max processor clock)
	Processors int   // initial pool size (Config.Processors)
	// MaxProcessors is the worker capacity: equal to Processors on the
	// simulator and on fixed-size native pools, Config.MaxProcessors on
	// elastic ones. Per has one row per capacity slot, so workers added
	// mid-run report their counters like any other.
	MaxProcessors int
	BusyCycles    int64 // sum over processors of cycles running tasks
	IdleCycles    int64 // sum over processors of cycles waiting for work
	// SetSplits counts task-affinity set members enqueued or stolen away
	// from their set's home; it must be zero under the default whole-set
	// stealing policy on either backend (see Runtime.SetSplits).
	SetSplits int64
	Total     Counters
	Per       []Counters
	// PoolEvents is the worker-pool membership timeline (adds, planned
	// drains, fault kills) in completion order; empty on the simulator
	// and on healthy fixed-size native runs.
	PoolEvents []PoolEvent
	// Decisions is the adaptive controller's decision trace in the
	// order the policy changes were taken; empty unless Config.Adapt
	// was set. Folding it over AdaptInitialState with
	// ReplayAdaptDecisions reconstructs the final policy exactly.
	Decisions []AdaptDecision
}

// Utilization returns busy cycles as a fraction of total processor-cycles.
func (r Report) Utilization() float64 {
	denom := r.Cycles * int64(r.Processors)
	if denom == 0 {
		return 0
	}
	return float64(r.BusyCycles) / float64(denom)
}

// Report captures the current performance-monitor state. Call after Run.
// On the native backend, Cycles/BusyCycles/IdleCycles are wall-clock
// nanoseconds (elapsed, summed task-execution time, summed parked time)
// and the memory-system counters are zero; the runtime counters (tasks,
// spawns, steals, locks, wakes) have the same meaning on both backends.
func (rt *Runtime) Report() Report {
	r := Report{
		Cycles:        rt.ElapsedCycles(),
		Processors:    rt.cfg.Processors,
		MaxProcessors: len(rt.mon.Per),
		SetSplits:     rt.SetSplits(),
		Per:           make([]Counters, len(rt.mon.Per)),
		PoolEvents:    rt.PoolEvents(),
		Decisions:     pubDecisions(rt.adaptDecisions()),
	}
	for i := range rt.mon.Per {
		p := rt.mon.Per[i]
		c := Counters{
			Refs:           p.Refs,
			L1Hits:         p.L1Hits,
			L2Hits:         p.L2Hits,
			LocalMisses:    p.LocalMisses,
			RemoteMisses:   p.RemoteMisses,
			DirtyMisses:    p.DirtyMisses,
			Upgrades:       p.Upgrades,
			Invalidations:  p.Invalidations,
			Writebacks:     p.Writebacks,
			Prefetches:     p.Prefetches,
			PrefetchFills:  p.PrefetchFills,
			MemCycles:      p.MemCycles,
			ComputeCycles:  p.ComputeCycles,
			TasksRun:       p.TasksRun,
			TasksAtHome:    p.TasksAtHome,
			Spawns:         p.Spawns,
			SpawnBatches:   p.SpawnBatches,
			StealTries:     p.StealTries,
			StealsLocal:    p.StealsLocal,
			StealsRemote:   p.StealsRemote,
			SetSteals:      p.SetSteals,
			FailedSteals:   p.FailedSteals,
			LockBlocks:     p.LockBlocks,
			LockContention: p.LockContention,
			TargetedWakes:  p.TargetedWakes,
			BroadcastWakes: p.BroadcastWakes,
			FaultEvents:    p.FaultEvents,
			Redistributed:  p.Redistributed,
			Retries:        p.Retries,
			GaveUp:         p.GaveUp,
			TasksShed:      p.TasksShed,
			DeadlineMisses: p.DeadlineMisses,
		}
		r.Per[i] = c
		addCounters(&r.Total, c)
	}
	if rt.backend == BackendNative {
		r.BusyCycles, r.IdleCycles = rt.nat.BusyIdleNanos()
		return r
	}
	for _, p := range rt.eng.Procs {
		r.BusyCycles += p.Busy
		r.IdleCycles += p.Idle
	}
	return r
}

func addCounters(dst *Counters, c Counters) {
	dst.Refs += c.Refs
	dst.L1Hits += c.L1Hits
	dst.L2Hits += c.L2Hits
	dst.LocalMisses += c.LocalMisses
	dst.RemoteMisses += c.RemoteMisses
	dst.DirtyMisses += c.DirtyMisses
	dst.Upgrades += c.Upgrades
	dst.Invalidations += c.Invalidations
	dst.Writebacks += c.Writebacks
	dst.Prefetches += c.Prefetches
	dst.PrefetchFills += c.PrefetchFills
	dst.MemCycles += c.MemCycles
	dst.ComputeCycles += c.ComputeCycles
	dst.TasksRun += c.TasksRun
	dst.TasksAtHome += c.TasksAtHome
	dst.Spawns += c.Spawns
	dst.SpawnBatches += c.SpawnBatches
	dst.StealTries += c.StealTries
	dst.StealsLocal += c.StealsLocal
	dst.StealsRemote += c.StealsRemote
	dst.SetSteals += c.SetSteals
	dst.FailedSteals += c.FailedSteals
	dst.LockBlocks += c.LockBlocks
	dst.LockContention += c.LockContention
	dst.TargetedWakes += c.TargetedWakes
	dst.BroadcastWakes += c.BroadcastWakes
	dst.FaultEvents += c.FaultEvents
	dst.Redistributed += c.Redistributed
	dst.Retries += c.Retries
	dst.GaveUp += c.GaveUp
	dst.TasksShed += c.TasksShed
	dst.DeadlineMisses += c.DeadlineMisses
}

// String renders a compact human-readable summary.
func (r Report) String() string {
	var b strings.Builder
	t := r.Total
	fmt.Fprintf(&b, "cycles=%d procs=%d util=%.2f\n", r.Cycles, r.Processors, r.Utilization())
	fmt.Fprintf(&b, "refs=%d miss=%d (rate %.4f) local=%d remote=%d dirty=%d localFrac=%.2f\n",
		t.Refs, t.Misses(), t.MissRate(), t.LocalMisses, t.RemoteMisses, t.DirtyMisses, t.LocalFraction())
	fmt.Fprintf(&b, "tasks=%d atHome=%.2f spawns=%d steals(local=%d remote=%d sets=%d) lockBlocks=%d",
		t.TasksRun, t.HomeFraction(), t.Spawns, t.StealsLocal, t.StealsRemote, t.SetSteals, t.LockBlocks)
	return b.String()
}
