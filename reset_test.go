package cool_test

import (
	"sync/atomic"
	"testing"

	cool "github.com/coolrts/cool"
)

// sumJob spawns one task per chunk summing a freshly allocated array,
// and returns the expected and computed sums — a minimal but real
// workload for reuse tests (it allocates, so it exercises the arena
// rewind, and it spawns with object affinity, so it exercises the set
// table and placement).
func sumJob(t *testing.T, rt *cool.Runtime, chunks int) {
	t.Helper()
	const per = 512
	data := rt.NewF64(chunks*per, 0)
	for i := range data.Data {
		data.Data[i] = float64(i % 7)
	}
	var want, got float64
	for _, v := range data.Data {
		want += v
	}
	var total atomic.Int64
	err := rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			ctx.SpawnN("sum", chunks, func(c *cool.Ctx, i int) {
				var s float64
				for j := i * per; j < (i+1)*per; j++ {
					s += c.ReadF64(data, j)
				}
				total.Add(int64(s))
			}, func(i int) []cool.SpawnOpt {
				return []cool.SpawnOpt{cool.ObjectAffinity(data.Base + int64(i*per*8))}
			})
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	got = float64(total.Load())
	if got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

// TestResetNativeWarmReuse runs the same job repeatedly on one warm
// native runtime, asserting each run completes correctly and reports
// only its own work.
func TestResetNativeWarmReuse(t *testing.T) {
	rt, err := cool.NewRuntime(cool.Config{Processors: 4, Backend: cool.BackendNative})
	if err != nil {
		t.Fatal(err)
	}
	for job := 0; job < 5; job++ {
		if job > 0 {
			if err := rt.Reset(); err != nil {
				t.Fatalf("Reset before job %d: %v", job, err)
			}
		}
		sumJob(t, rt, 16)
		rep := rt.Report()
		// 16 spawned tasks + main, regardless of how many jobs ran before.
		if rep.Total.TasksRun != 17 {
			t.Fatalf("job %d: TasksRun = %d, want 17 (counters bled across Reset?)", job, rep.Total.TasksRun)
		}
		if rep.SetSplits != 0 {
			t.Fatalf("job %d: SetSplits = %d", job, rep.SetSplits)
		}
	}
}

// TestResetSimDeterministicReuse asserts a warm simulated runtime
// reproduces a cold run bit-for-bit: same task count, same cycle count.
func TestResetSimDeterministicReuse(t *testing.T) {
	rt, err := cool.NewRuntime(cool.Config{Processors: 4})
	if err != nil {
		t.Fatal(err)
	}
	sumJob(t, rt, 16)
	coldCycles := rt.ElapsedCycles()
	coldTasks := rt.Report().Total.TasksRun
	if err := rt.Reset(); err != nil {
		t.Fatal(err)
	}
	sumJob(t, rt, 16)
	if rt.ElapsedCycles() != coldCycles {
		t.Fatalf("warm run took %d cycles, cold took %d — reuse changed simulated behaviour", rt.ElapsedCycles(), coldCycles)
	}
	if rt.Report().Total.TasksRun != coldTasks {
		t.Fatalf("warm TasksRun = %d, cold %d", rt.Report().Total.TasksRun, coldTasks)
	}
}

// TestResetRewindsArena asserts the address space rewinds: the first
// allocation after Reset reuses the first allocation's address, on both
// backends.
func TestResetRewindsArena(t *testing.T) {
	for _, backend := range []cool.Backend{cool.BackendSim, cool.BackendNative} {
		rt, err := cool.NewRuntime(cool.Config{Processors: 2, Backend: backend})
		if err != nil {
			t.Fatal(err)
		}
		a := rt.NewF64(128, 0)
		if err := rt.Run(func(ctx *cool.Ctx) {}); err != nil {
			t.Fatal(err)
		}
		if err := rt.Reset(); err != nil {
			t.Fatal(err)
		}
		b := rt.NewF64(128, 0)
		if a.Base != b.Base {
			t.Fatalf("%v: post-Reset allocation at %#x, want rewound %#x", backend, b.Base, a.Base)
		}
		if err := rt.Run(func(ctx *cool.Ctx) {}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestResetCounterFidelity runs a first job whose every spawn is shed
// (an already-expired job-level deadline under an armed shed policy),
// then asserts the second, clean job on the same warm runtime reports
// zero sheds, deadline misses, faults, and retries — per-worker rows
// included. This is the report-fidelity contract runtime reuse must
// keep: a job's report never bleeds a predecessor's counters.
func TestResetCounterFidelity(t *testing.T) {
	rt, err := cool.NewRuntime(cool.Config{
		Processors: 2,
		Backend:    cool.BackendNative,
		Shed:       &cool.ShedPolicy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.SetJobSLO(0, 1) // every spawn's deadline expired 1ns after start
	var ran atomic.Int64
	err = rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			for i := 0; i < 32; i++ {
				ctx.Spawn("doomed", func(c *cool.Ctx) { ran.Add(1) })
			}
		})
	})
	if err != nil {
		t.Fatalf("shed job: %v", err)
	}
	first := rt.Report()
	if first.Total.TasksShed == 0 || first.Total.DeadlineMisses == 0 {
		t.Fatalf("first job shed nothing (TasksShed=%d DeadlineMisses=%d); SLO wiring broken",
			first.Total.TasksShed, first.Total.DeadlineMisses)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d doomed tasks ran despite expired deadline", ran.Load())
	}

	if err := rt.Reset(); err != nil {
		t.Fatal(err)
	}
	sumJob(t, rt, 8)
	second := rt.Report()
	if second.Total.TasksShed != 0 || second.Total.DeadlineMisses != 0 ||
		second.Total.FaultEvents != 0 || second.Total.Retries != 0 {
		t.Fatalf("second job reports bled counters: TasksShed=%d DeadlineMisses=%d FaultEvents=%d Retries=%d",
			second.Total.TasksShed, second.Total.DeadlineMisses, second.Total.FaultEvents, second.Total.Retries)
	}
	for p, row := range second.Per {
		if row.TasksShed != 0 || row.DeadlineMisses != 0 {
			t.Fatalf("worker %d row not fresh after Reset: %+v", p, row)
		}
	}
	if second.Total.TasksRun != 9 { // 8 chunks + main
		t.Fatalf("second job TasksRun = %d, want 9", second.Total.TasksRun)
	}
}

// TestResetRefusedAfterFailedNativeRun asserts a native runtime that
// stopped on an error refuses warm reuse (the pool must rebuild it).
func TestResetRefusedAfterFailedNativeRun(t *testing.T) {
	rt, err := cool.NewRuntime(cool.Config{Processors: 2, Backend: cool.BackendNative})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(func(ctx *cool.Ctx) { panic("boom") }); err == nil {
		t.Fatal("panicking run reported success")
	}
	if err := rt.Reset(); err == nil {
		t.Fatal("Reset accepted a runtime whose run failed")
	}
}

// TestSetJobSLOPriorityDefault asserts the job default yields to an
// explicit per-spawn WithPriority.
func TestSetJobSLOPriorityDefault(t *testing.T) {
	rt, err := cool.NewRuntime(cool.Config{Processors: 2, Backend: cool.BackendNative})
	if err != nil {
		t.Fatal(err)
	}
	rt.SetJobSLO(5, 0)
	// No shedding armed: priorities are inert metadata here; the test
	// just exercises the default/override path end to end.
	err = rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			ctx.Spawn("defaulted", func(c *cool.Ctx) {})
			ctx.Spawn("explicit", func(c *cool.Ctx) {}, cool.WithPriority(1))
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}
