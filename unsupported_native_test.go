package cool_test

import (
	"errors"
	"testing"

	cool "github.com/coolrts/cool"
	"github.com/coolrts/cool/internal/machine"
)

// TestConfigOptionBackendMatrix drives every Config option through
// NewRuntime on both backends and pins the support matrix: only the
// options whose semantics require the simulated machine itself —
// Machine, CycleLimit, Quantum — are rejected natively, and each
// rejection names its option. Everything else, including the robustness
// stack (Faults, Retry, Deadline), must construct on both backends.
func TestConfigOptionBackendMatrix(t *testing.T) {
	dash := machine.DASH(4)
	cases := []struct {
		option  string // "" = the bare baseline config
		mut     func(*cool.Config)
		simOnly bool // true: native must reject with this option's name
	}{
		{"", func(c *cool.Config) {}, false},
		{"ClusterSize", func(c *cool.Config) { c.ClusterSize = 2 }, false},
		{"Sched", func(c *cool.Config) { c.Sched = cool.SchedPolicy{PlaceSetsLeastLoaded: true} }, false},
		{"Seed", func(c *cool.Config) { c.Seed = 7 }, false},
		{"TraceCapacity", func(c *cool.Config) { c.TraceCapacity = 64 }, false},
		{"Faults", func(c *cool.Config) { c.Faults = cool.NewFaultPlan().StallProcessor(1, 1000, 100) }, false},
		{"Retry", func(c *cool.Config) { c.Retry = &cool.RetryPolicy{MaxAttempts: 3} }, false},
		{"Deadline", func(c *cool.Config) { c.Deadline = 10_000_000_000 }, false},
		{"Machine", func(c *cool.Config) { c.Machine = &dash }, true},
		{"CycleLimit", func(c *cool.Config) { c.CycleLimit = 1_000_000 }, true},
		{"Quantum", func(c *cool.Config) { c.Quantum = 500 }, true},
	}
	for _, tc := range cases {
		name := tc.option
		if name == "" {
			name = "baseline"
		}
		for _, be := range backends {
			tc, be := tc, be
			t.Run(name+"/"+be.name, func(t *testing.T) {
				cfg := cool.Config{Processors: 4, Backend: be.b}
				tc.mut(&cfg)
				_, err := cool.NewRuntime(cfg)
				var ue *cool.UnsupportedOnNativeError
				switch {
				case be.b == cool.BackendNative && tc.simOnly:
					if !errors.As(err, &ue) {
						t.Fatalf("NewRuntime = %v, want *UnsupportedOnNativeError", err)
					}
					if ue.Option != tc.option {
						t.Fatalf("rejected option %q, want %q", ue.Option, tc.option)
					}
				default:
					if err != nil {
						t.Fatalf("NewRuntime: %v, want success", err)
					}
				}
			})
		}
	}
}
