package cool

// This file is the warm-reuse surface that the serving layer
// (internal/serve, cmd/coolserve) is built on: Reset re-arms a runtime
// for another Run without rebuilding it, SetJobSLO tags the next run
// with per-job priority/deadline defaults that flow into the shedding
// machinery, and QueuedTasks exposes the live backlog signal routing
// policies consume.

// Reset returns a runtime that has finished a Run to its pre-Run state
// so it can Run again — the warm-reuse path that makes a long-lived
// serving process cheaper than building a fresh runtime per job.
//
// What survives a reset, and why reuse wins: on the native backend the
// worker structures stay warm (task-record freelists, sized scratch
// buffers, victim rings, the shard table's capacity), and only the
// per-run state — counters, channels, set homes, the consumed fault
// plan — is re-armed. The perfmon counters are zeroed, so the next
// run's Report starts from a clean slate and never bleeds a previous
// job's FaultEvents/Retries/TasksShed.
//
// What does NOT survive: every simulated address handed out by the
// allocation API. The arena bump pointers rewind, so pre-reset
// addresses will be re-issued to the next run's allocations — a job
// must allocate what it uses within its own run. Job SLO defaults
// (SetJobSLO) also clear.
//
// Reset must not race with Run or with the allocation API. A native
// run that failed (deadline, watchdog, panic, abort) may have unwound
// with task records still queued; Reset refuses with the run's error
// and the caller must build a fresh runtime. On the simulator Reset
// simply rebuilds the engine stack, so it always succeeds.
func (rt *Runtime) Reset() error {
	if rt.backend == BackendNative {
		if err := rt.nat.Reset(); err != nil {
			return err
		}
		rt.spaceMu.Lock()
		rt.space.Reset()
		rt.spaceMu.Unlock()
		rt.mon.Reset()
	} else {
		if err := rt.initSim(); err != nil {
			return err
		}
	}
	rt.ran = false
	rt.setupErr = nil
	rt.jobPrio, rt.jobDeadline = 0, 0
	return nil
}

// SetJobSLO sets the default priority class (clamped to [0,7]) and
// absolute deadline (in the runtime's clock — cycles on the simulator,
// nanoseconds since Run natively; 0 = none) applied to every spawn of
// the next Run that does not carry its own WithPriority/WithDeadline
// option. This is how a multi-tenant serving layer maps per-job SLOs
// onto the shedding and priority-floor machinery without threading
// options through application code. Call between runs only — the
// defaults are read concurrently once workers start spawning.
func (rt *Runtime) SetJobSLO(priority int, deadlineAt int64) {
	if priority < 0 {
		priority = 0
	}
	if priority > 7 {
		priority = 7
	}
	if deadlineAt < 0 {
		deadlineAt = 0
	}
	rt.jobPrio = int8(priority)
	rt.jobDeadline = deadlineAt
}

// applyJobSLO folds the runtime's job-level defaults into one spawn's
// accumulated options: an explicit WithPriority always wins, and a
// spawn-site WithDeadline (deadline != 0) wins over the job deadline.
func (rt *Runtime) applyJobSLO(o *spawnOptions) {
	if !o.prioSet {
		o.prio = rt.jobPrio
	}
	if o.deadline == 0 {
		o.deadline = rt.jobDeadline
	}
}

// QueuedTasks returns the number of spawned tasks currently sitting in
// scheduler queues — the live backlog signal least-loaded routing and
// admission control read. Meaningful on the native backend while Run
// executes; the single-threaded simulator always reports 0 here.
func (rt *Runtime) QueuedTasks() int {
	if rt.backend == BackendNative {
		return rt.nat.QueuedTasks()
	}
	return 0
}
