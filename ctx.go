package cool

import (
	"github.com/coolrts/cool/internal/core"
	"github.com/coolrts/cool/internal/native"
	"github.com/coolrts/cool/internal/sim"
)

// Ctx is the execution context of a running task. Every simulated action —
// computing, touching memory, spawning, synchronizing — goes through it
// and is charged simulated cycles on the current processor. On the
// native backend (nc non-nil) the same API drives the goroutine
// scheduler instead: spawning, affinity placement, and monitors behave
// identically, while the memory-system charges (Access, Prefetch) are
// no-ops because the real machine's caches do the work.
type Ctx struct {
	sc    *sim.Ctx    // sim backend only
	nc    *native.Ctx // native backend only
	rt    *Runtime
	scope *core.Scope // innermost active waitfor scope (sim backend)
}

// Runtime returns the runtime executing this task.
func (c *Ctx) Runtime() *Runtime { return c.rt }

// ProcID returns the processor currently executing the task.
func (c *Ctx) ProcID() int {
	if c.nc != nil {
		return c.nc.ProcID()
	}
	return c.sc.Proc().ID
}

// Cluster returns the cluster of the current processor.
func (c *Ctx) Cluster() int { return c.rt.cfg.ClusterOf(c.ProcID()) }

// NumProcs returns the number of processors in the machine.
func (c *Ctx) NumProcs() int { return c.rt.cfg.Processors }

// Now returns the current time on this processor: simulated cycles on
// the simulator backend, wall-clock nanoseconds on the native backend.
func (c *Ctx) Now() int64 {
	if c.nc != nil {
		return c.nc.Now()
	}
	return c.sc.Now()
}

// Compute charges cycles of pure computation (no memory traffic). On the
// native backend the work-unit count still accumulates in the
// ComputeCycles counter (so utilization figures stay meaningful) but no
// time passes — the real computation is the time.
func (c *Ctx) Compute(cycles int64) {
	c.rt.mon.Per[c.ProcID()].ComputeCycles += cycles
	if c.nc != nil {
		return
	}
	c.sc.Charge(cycles)
}

// Access simulates a reference to [addr, addr+size) and charges the
// latency of whichever level of the memory hierarchy services it. On the
// native backend this is a no-op: the host memory system services the
// program's real loads and stores, and the simulated cache counters stay
// zero.
func (c *Ctx) Access(addr, size int64, write bool) {
	if c.nc != nil {
		return
	}
	p := c.ProcID()
	row := &c.rt.mon.Per[p]
	refs, miss := row.Refs, row.RemoteMisses+row.DirtyMisses
	cyc := c.rt.caches.Access(p, c.sc.Now(), addr, size, write)
	row.MemCycles += cyc
	if c.sc.Task().StolenRemote {
		// Attribute this access to stolen work: the adaptive
		// controller prices cross-cluster stealing by the marginal
		// non-local miss rate these references pay.
		row.StolenRefs += row.Refs - refs
		row.StolenMisses += row.RemoteMisses + row.DirtyMisses - miss
	}
	c.sc.Charge(cyc)
}

// spawnOptions accumulates the affinity specification of one spawn.
// objs aliases objsBuf until a spawn names more than two objects, so the
// common one-object case costs no heap allocation on the spawn path.
type spawnOptions struct {
	aff      core.Affinity
	mutex    *Monitor
	prio     int8       // priority class [0,7] (WithPriority)
	prioSet  bool       // an explicit WithPriority beats the job default
	deadline int64      // absolute deadline (WithDeadline), 0 = none
	objs     []sizedObj // OBJECT affinity operands (one or several)
	objsBuf  [2]sizedObj
}

// sizedObj is one OBJECT affinity operand with an optional size used to
// weigh placement when several objects are named.
type sizedObj struct {
	addr int64
	size int64
}

// SpawnOpt is an affinity hint or execution option for Spawn, mirroring
// the affinity declarations of Table 1 in the paper. It is a small value
// (not a closure), so building options at a spawn site costs no heap
// allocation — spawning is the native backend's hottest path.
type SpawnOpt struct {
	kind  optKind
	addr  int64
	size  int64
	proc  int
	mutex *Monitor
}

type optKind uint8

const (
	optOnObject optKind = iota + 1
	optTaskAffinity
	optObjectSized
	optOnProcessor
	optWithMutex
	optWithPriority
	optWithDeadline
)

// apply folds one option into the accumulated spawn specification.
func (op SpawnOpt) apply(o *spawnOptions) {
	switch op.kind {
	case optOnObject:
		o.aff.TaskObj = op.addr
		switch o.aff.Kind {
		case core.AffNone:
			o.aff.Kind = core.AffSimple
		case core.AffObject:
			o.aff.Kind = core.AffTaskObject
		}
	case optTaskAffinity:
		o.aff.TaskObj = op.addr
		switch o.aff.Kind {
		case core.AffNone, core.AffSimple:
			o.aff.Kind = core.AffTask
		case core.AffObject, core.AffTaskObject:
			o.aff.Kind = core.AffTaskObject
		}
	case optObjectSized:
		if o.objs == nil {
			o.objs = o.objsBuf[:0]
		}
		o.objs = append(o.objs, sizedObj{addr: op.addr, size: op.size})
		o.aff.ObjectObj = op.addr
		switch o.aff.Kind {
		case core.AffNone, core.AffSimple:
			o.aff.Kind = core.AffObject
		case core.AffTask:
			o.aff.Kind = core.AffTaskObject
		}
	case optOnProcessor:
		o.aff.Kind = core.AffProcessor
		o.aff.Processor = op.proc
	case optWithMutex:
		o.mutex = op.mutex
	case optWithPriority:
		p := op.proc
		if p < 0 {
			p = 0
		}
		if p > 7 {
			p = 7
		}
		o.prio = int8(p)
		o.prioSet = true
	case optWithDeadline:
		o.deadline = op.addr
	}
}

// OnObject declares simple affinity: the task wants cache and memory
// locality on the object at addr (also the "default affinity" a COOL
// parallel function has for its base object).
func OnObject(addr int64) SpawnOpt {
	return SpawnOpt{kind: optOnObject, addr: addr}
}

// TaskAffinity declares affinity(obj, TASK): tasks naming the same object
// form a task-affinity set executed back to back for cache reuse.
func TaskAffinity(addr int64) SpawnOpt {
	return SpawnOpt{kind: optTaskAffinity, addr: addr}
}

// ObjectAffinity declares affinity(obj, OBJECT): the task is collocated
// with the processor whose local memory homes the object.
func ObjectAffinity(addr int64) SpawnOpt {
	return ObjectAffinitySized(addr, 0)
}

// ObjectAffinitySized declares OBJECT affinity for an object of known
// size. When a spawn names several objects, the task is placed on the
// server homing the most bytes and the runtime prefetches the remaining
// objects as the task starts — the multiple-object heuristic the paper
// proposes in §4.1.
func ObjectAffinitySized(addr, size int64) SpawnOpt {
	return SpawnOpt{kind: optObjectSized, addr: addr, size: size}
}

// OnProcessor declares affinity(n, PROCESSOR): schedule the task directly
// on server n modulo the number of processors.
func OnProcessor(n int) SpawnOpt {
	return SpawnOpt{kind: optOnProcessor, proc: n}
}

// WithMutex makes the spawned task a COOL mutex function: it acquires the
// monitor before its body runs and releases it after, serializing with
// other mutex tasks on the same object.
func WithMutex(m *Monitor) SpawnOpt {
	return SpawnOpt{kind: optWithMutex, mutex: m}
}

// WithPriority assigns the task a priority class in [0,7] (clamped;
// 0 is the default and lowest, 7 is never shed on priority grounds).
// Under overload with shedding armed (Config.Shed on the native
// backend) lower classes are dropped first.
func WithPriority(p int) SpawnOpt {
	return SpawnOpt{kind: optWithPriority, proc: p}
}

// WithDeadline sets the task's absolute deadline in the runtime's own
// clock — simulated cycles on the simulator, wall-clock nanoseconds
// since Run on the native backend (both the scale Ctx.Now reads). A
// task dispatched after its deadline is shed instead of run when
// shedding is armed; the simulator enforces deadlines deterministically
// whenever one is set.
func WithDeadline(at int64) SpawnOpt {
	return SpawnOpt{kind: optWithDeadline, addr: at}
}

// Spawn creates a task executing fn. With no options the task has no
// locality preference; affinity options steer its placement exactly as
// the paper's affinity declarations do. The task is accounted to the
// innermost enclosing WaitFor scope (transitively inherited by its own
// spawns).
func (c *Ctx) Spawn(name string, fn func(*Ctx), opts ...SpawnOpt) {
	if c.nc != nil {
		c.spawnNative(name, fn, opts)
		return
	}
	c.sc.SyncPoint()
	var o spawnOptions
	for _, opt := range opts {
		opt.apply(&o)
	}
	p := c.ProcID()
	rt := c.rt
	rt.applyJobSLO(&o)
	rt.mon.Per[p].Spawns++
	c.sc.Charge(rt.cfg.Lat.Spawn)

	// Multiple OBJECT operands: place at the server homing the most
	// bytes; the rest are prefetched when the task starts (§4.1).
	var prefetch []sizedObj
	if len(o.objs) > 1 {
		best := pickHome(rt, o.objs)
		o.aff.ObjectObj = o.objs[best].addr
		for i, ob := range o.objs {
			if i != best {
				prefetch = append(prefetch, ob)
			}
		}
	}

	class, server, slot, affObj := rt.sched.Place(o.aff, p)
	if server != p {
		c.sc.Charge(rt.cfg.Lat.EnqueueAway)
	}
	td := rt.newTaskDesc()
	td.Class = class
	td.Server = server
	td.Slot = slot
	td.AffObj = affObj
	td.Scope = c.scope
	td.Prio = o.prio
	td.DeadlineAt = o.deadline
	if td.Scope != nil {
		rt.sched.ScopeAdd(td.Scope)
	}
	mutex := o.mutex
	t := rt.eng.NewTask(name, c.sc.Now(), func(sc *sim.Ctx) {
		if td.DeadlineAt > 0 && sc.Now() > td.DeadlineAt {
			// Deterministic deadline shed: the task dispatched past its
			// deadline completes (scope and trace accounting) without
			// running its body — the simulated twin of the native SLO
			// layer's deadline rule.
			ctr := &rt.mon.Per[sc.Proc().ID]
			ctr.DeadlineMisses++
			ctr.TasksShed++
			if td.Scope != nil {
				rt.sched.ScopeDone(sc, td.Scope)
			}
			rt.sched.TraceDone(sc)
			rt.freeTaskDesc(td)
			return
		}
		cc := &Ctx{sc: sc, rt: rt, scope: td.Scope}
		for _, ob := range prefetch {
			size := ob.size
			if size <= 0 {
				size = 64
			}
			cc.Prefetch(ob.addr, size)
		}
		if mutex != nil {
			rt.sched.Lock(sc, &mutex.m)
		}
		fn(cc)
		if mutex != nil {
			rt.sched.Unlock(sc, &mutex.m)
		}
		if td.Scope != nil {
			rt.sched.ScopeDone(sc, td.Scope)
		}
		rt.sched.TraceDone(sc)
		rt.freeTaskDesc(td)
	})
	t.Data = td
	td.T = t
	rt.sched.Enqueue(td, c.sc.Now())
}

// SpawnN creates n sibling tasks running fn(c, i) for i in [0, n); opts,
// when non-nil, supplies member i's spawn options. Semantically it is
// exactly the loop `for i { Spawn(name, func(c){fn(c,i)}, opts(i)...) }`,
// and the simulator executes it as that literal loop, so converting a
// spawn loop leaves every simulated figure unchanged. The native backend
// instead publishes the burst as one batch — one queue publish and one
// wake decision instead of n (counted by SpawnBatches) — which is where
// spawn-heavy phases win.
//
// The slice opts returns is consumed before opts is called for the next
// member, so a caller may fill and return the same backing buffer every
// call rather than allocate one per member.
func (c *Ctx) SpawnN(name string, n int, fn func(*Ctx, int), opts func(i int) []SpawnOpt) {
	if c.nc != nil {
		c.spawnNNative(name, n, fn, opts)
		return
	}
	for i := 0; i < n; i++ {
		i := i
		var o []SpawnOpt
		if opts != nil {
			o = opts(i)
		}
		c.Spawn(name, func(cc *Ctx) { fn(cc, i) }, o...)
	}
}

// spawnNNative lowers a SpawnN burst onto the goroutine backend: each
// member's affinity resolution (including the multiple-object §4.1
// heuristic) matches spawnNative's, and fn rides the whole batch as one
// shared payload, run per member through native Config.InvokeN with the
// member index.
func (c *Ctx) spawnNNative(name string, n int, fn func(*Ctx, int), opts func(i int) []SpawnOpt) {
	rt := c.rt
	get := func(i int) (core.Affinity, *native.Monitor, int8, int64) {
		var o spawnOptions
		if opts != nil {
			for _, opt := range opts(i) {
				opt.apply(&o)
			}
		}
		if len(o.objs) > 1 {
			o.aff.ObjectObj = o.objs[pickHome(rt, o.objs)].addr
		}
		rt.applyJobSLO(&o)
		var nm *native.Monitor
		if o.mutex != nil {
			nm = &o.mutex.nm
		}
		return o.aff, nm, o.prio, o.deadline
	}
	c.nc.SpawnN(name, n, get, fn)
}

// spawnNative places and enqueues one task on the goroutine backend.
// The affinity resolution (including the multiple-object §4.1 heuristic)
// matches the simulator's; prefetching is a no-op natively, so the
// non-chosen objects are simply dropped.
func (c *Ctx) spawnNative(name string, fn func(*Ctx), opts []SpawnOpt) {
	var o spawnOptions
	for _, opt := range opts {
		opt.apply(&o)
	}
	rt := c.rt
	if len(o.objs) > 1 {
		o.aff.ObjectObj = o.objs[pickHome(rt, o.objs)].addr
	}
	rt.applyJobSLO(&o)
	var nm *native.Monitor
	if o.mutex != nil {
		nm = &o.mutex.nm
	}
	c.nc.SpawnPayload(name, o.aff, nm, fn, o.prio, o.deadline)
}

// homeServer returns the server treated as the home processor of the
// object at addr, on either backend.
func (rt *Runtime) homeServer(addr int64) int {
	if rt.backend == BackendNative {
		rt.spaceMu.RLock()
		defer rt.spaceMu.RUnlock()
		return rt.space.HomeProc(addr)
	}
	return rt.sched.HomeServer(addr)
}

// newTaskDesc takes a zeroed descriptor off the runtime's free list, or
// allocates one. Coroutines run one at a time under the engine loop, so
// the free list needs no locking.
func (rt *Runtime) newTaskDesc() *core.TaskDesc {
	if n := len(rt.tdFree); n > 0 {
		td := rt.tdFree[n-1]
		rt.tdFree[n-1] = nil
		rt.tdFree = rt.tdFree[:n-1]
		*td = core.TaskDesc{}
		return td
	}
	return &core.TaskDesc{}
}

// freeTaskDesc recycles a descriptor. Called only from the completion
// path of the spawn wrapper: a completed task is off every queue and is
// never dispatched again. Killed or panicked tasks skip this, so their
// descriptors stay valid for failure reporting.
func (rt *Runtime) freeTaskDesc(td *core.TaskDesc) {
	rt.tdFree = append(rt.tdFree, td)
}

// pickHome returns the index of the object whose home server holds the
// most affinity-weighted bytes.
func pickHome(rt *Runtime, objs []sizedObj) int {
	bytesAt := map[int]int64{}
	for _, ob := range objs {
		w := ob.size
		if w <= 0 {
			w = 1
		}
		bytesAt[rt.homeServer(ob.addr)] += w
	}
	best, bestBytes := 0, int64(-1)
	for i, ob := range objs {
		sv := rt.homeServer(ob.addr)
		if bytesAt[sv] > bestBytes {
			best, bestBytes = i, bytesAt[sv]
		}
	}
	return best
}

// Prefetch issues a non-binding read prefetch of [addr, addr+size): the
// lines stream into this processor's caches while only a small issue
// cost is charged (the paper's §8 prefetching support).
func (c *Ctx) Prefetch(addr, size int64) {
	if c.nc != nil {
		return // the host hardware prefetches for itself
	}
	p := c.ProcID()
	cyc := c.rt.caches.Prefetch(p, c.sc.Now(), addr, size)
	c.rt.mon.Per[p].MemCycles += cyc
	c.sc.Charge(cyc)
}

// WaitFor runs body (in the current task) and then blocks until every
// task spawned within body's dynamic extent — including tasks spawned by
// descendant tasks outside any inner WaitFor — has completed. This is the
// paper's waitfor construct.
func (c *Ctx) WaitFor(body func()) {
	if c.nc != nil {
		c.nc.WaitFor(body)
		return
	}
	scope := &core.Scope{}
	old := c.scope
	c.scope = scope
	body()
	c.scope = old
	c.rt.sched.ScopeWait(c.sc, scope)
}

// SetClusterStealingOnly flips the cluster-stealing restriction while
// the program runs — the dynamic runtime flag of the paper's Panel
// Cholesky cluster-scheduling experiment (§6.3).
func (c *Ctx) SetClusterStealingOnly(on bool) {
	if c.nc != nil {
		c.rt.nat.SetClusterStealingOnly(on)
		return
	}
	c.rt.sched.SetClusterStealingOnly(on)
}

// Monitor serializes mutex functions on one object (COOL's monitor).
// Create with Runtime.NewMonitor or use the zero value for an object
// without a simulated address. On the native backend the monitor is a
// real mutex.
type Monitor struct {
	m  core.Monitor
	nm native.Monitor
}

// NewMonitor returns a monitor associated with the simulated object at
// addr (used for accounting; the zero Monitor works too).
func (rt *Runtime) NewMonitor(addr int64) *Monitor {
	return &Monitor{m: core.Monitor{Addr: addr}}
}

// Lock acquires the monitor, blocking while another task holds it.
func (c *Ctx) Lock(m *Monitor) {
	if c.nc != nil {
		c.nc.Lock(&m.nm)
		return
	}
	c.rt.sched.Lock(c.sc, &m.m)
}

// Unlock releases the monitor.
func (c *Ctx) Unlock(m *Monitor) {
	if c.nc != nil {
		c.nc.Unlock(&m.nm)
		return
	}
	c.rt.sched.Unlock(c.sc, &m.m)
}

// Cond is a condition variable with Mesa semantics, used with a Monitor.
// On the native backend a waiting task blocks its worker goroutine (the
// simulator parks only the task); see DESIGN.md §9.
type Cond struct {
	c   core.Cond
	ncv native.Cond
}

// Wait atomically releases m and blocks until signalled, reacquiring m
// before returning.
func (c *Ctx) Wait(cv *Cond, m *Monitor) {
	if c.nc != nil {
		c.nc.Wait(&cv.ncv, &m.nm)
		return
	}
	c.rt.sched.Wait(c.sc, &cv.c, &m.m)
}

// Signal wakes the oldest waiter on cv, if any.
func (c *Ctx) Signal(cv *Cond) {
	if c.nc != nil {
		c.nc.Signal(&cv.ncv)
		return
	}
	c.rt.sched.Signal(c.sc, &cv.c)
}

// Broadcast wakes every waiter on cv.
func (c *Ctx) Broadcast(cv *Cond) {
	if c.nc != nil {
		c.nc.Broadcast(&cv.ncv)
		return
	}
	c.rt.sched.Broadcast(c.sc, &cv.c)
}
