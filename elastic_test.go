package cool_test

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	cool "github.com/coolrts/cool"
)

// TestElasticConfigRejectedOnSim pins the validation surface: the
// elastic-pool and SLO knobs are native-only, and the simulator must
// say so at NewRuntime rather than silently ignore them.
func TestElasticConfigRejectedOnSim(t *testing.T) {
	cases := []struct {
		name string
		cfg  cool.Config
		want string
	}{
		{"maxprocs", cool.Config{Processors: 2, MaxProcessors: 4}, "MaxProcessors"},
		{"shed", cool.Config{Processors: 2, Shed: &cool.ShedPolicy{}}, "Shed"},
		{"autoscale", cool.Config{Processors: 2, Autoscale: &cool.AutoscalePolicy{}}, "Autoscale"},
	}
	for _, tc := range cases {
		if _, err := cool.NewRuntime(tc.cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: NewRuntime = %v, want error mentioning %q and BackendNative", tc.name, err, tc.want)
		}
	}
}

// TestElasticCallsOnSim checks the degraded behavior of the elastic
// API on the simulator: errors from the mutating calls, fixed
// Processors from PoolSize, and a nil timeline.
func TestElasticCallsOnSim(t *testing.T) {
	rt, err := cool.NewRuntime(cool.Config{Processors: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddWorkers(1); err == nil {
		t.Error("AddWorkers on the simulator succeeded")
	}
	if _, err := rt.Retire(1); err == nil {
		t.Error("Retire on the simulator succeeded")
	}
	if err := rt.RetireWorkers(1); err == nil {
		t.Error("RetireWorkers on the simulator succeeded")
	}
	if got := rt.PoolSize(); got != 4 {
		t.Errorf("PoolSize = %d, want the configured 4", got)
	}
	if evs := rt.PoolEvents(); len(evs) != 0 {
		t.Errorf("PoolEvents on the simulator = %v, want none", evs)
	}
}

// TestPublicElasticScale drives the public grow/retire surface on the
// native backend and checks the run report: a capacity-sized Per table
// with counters for the workers added mid-run, and a complete
// add/drain timeline in completion order.
func TestPublicElasticScale(t *testing.T) {
	rt, err := cool.NewRuntime(cool.Config{
		Processors:    2,
		MaxProcessors: 6,
		Backend:       cool.BackendNative,
	})
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	const n = 300
	err = rt.Run(func(ctx *cool.Ctx) {
		ids, err := rt.AddWorkers(4)
		if err != nil {
			t.Errorf("AddWorkers: %v", err)
			return
		}
		if len(ids) != 4 || rt.PoolSize() != 6 {
			t.Errorf("AddWorkers ids=%v PoolSize=%d, want 4 ids and size 6", ids, rt.PoolSize())
			return
		}
		ctx.WaitFor(func() {
			for i := 0; i < n; i++ {
				i := i
				ctx.Spawn("t", func(*cool.Ctx) {
					ran.Add(1)
					time.Sleep(2 * time.Microsecond)
				}, cool.OnProcessor(i%6))
			}
		})
		if _, err := rt.Retire(4); err != nil {
			t.Errorf("Retire: %v", err)
			return
		}
		for rt.PoolSize() > 2 {
			time.Sleep(20 * time.Microsecond)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran.Load() != n {
		t.Fatalf("ran %d of %d tasks", ran.Load(), n)
	}
	rep := rt.Report()
	if rep.Processors != 2 || rep.MaxProcessors != 6 || len(rep.Per) != 6 {
		t.Fatalf("report shape: Processors=%d MaxProcessors=%d len(Per)=%d, want 2/6/6",
			rep.Processors, rep.MaxProcessors, len(rep.Per))
	}
	if rep.SetSplits != 0 {
		t.Fatalf("SetSplits=%d want 0", rep.SetSplits)
	}
	var addedRan int64
	for id := 2; id < 6; id++ {
		addedRan += rep.Per[id].TasksRun
	}
	if addedRan == 0 {
		t.Fatal("per-worker rows for mid-run-added workers recorded no tasks")
	}
	adds, drains := 0, 0
	last := int64(-1)
	for _, ev := range rep.PoolEvents {
		if ev.TimeNS < last {
			t.Fatalf("PoolEvents out of order: %+v", rep.PoolEvents)
		}
		last = ev.TimeNS
		switch ev.Kind {
		case "add":
			adds++
		case "drain":
			drains++
			if ev.DurationNS < 0 {
				t.Fatalf("drain event %+v has negative latency", ev)
			}
		default:
			t.Fatalf("unexpected pool event kind %q", ev.Kind)
		}
	}
	if adds != 4 || drains != 4 {
		t.Fatalf("PoolEvents: %d adds, %d drains, want 4 each", adds, drains)
	}
}

// TestWithDeadlineShedsOnBothBackends spawns half the tasks with an
// already-expired deadline on each backend: the expired half must shed
// (counted as deadline misses, scope still released) and the rest run.
// On the simulator the shed is deterministic; on the native backend it
// requires Config.Shed.
func TestWithDeadlineShedsOnBothBackends(t *testing.T) {
	const n = 40
	run := func(t *testing.T, cfg cool.Config) cool.Report {
		t.Helper()
		rt, err := cool.NewRuntime(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var ran atomic.Int64
		err = rt.Run(func(ctx *cool.Ctx) {
			ctx.WaitFor(func() {
				for i := 0; i < n; i++ {
					ctx.Spawn("late", func(*cool.Ctx) { ran.Add(1) }, cool.WithDeadline(1))
					ctx.Spawn("fresh", func(*cool.Ctx) { ran.Add(1) },
						cool.WithDeadline(time.Hour.Nanoseconds()))
				}
			})
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if ran.Load() != n {
			t.Fatalf("ran %d tasks, want %d (only the in-deadline half)", ran.Load(), n)
		}
		return rt.Report()
	}
	t.Run("sim", func(t *testing.T) {
		rep := run(t, cool.Config{Processors: 2})
		if rep.Total.DeadlineMisses != n || rep.Total.TasksShed != n {
			t.Fatalf("DeadlineMisses=%d TasksShed=%d, want %d each",
				rep.Total.DeadlineMisses, rep.Total.TasksShed, n)
		}
	})
	t.Run("native", func(t *testing.T) {
		rep := run(t, cool.Config{
			Processors: 2,
			Backend:    cool.BackendNative,
			Shed:       &cool.ShedPolicy{},
		})
		if rep.Total.DeadlineMisses != n || rep.Total.TasksShed != n {
			t.Fatalf("DeadlineMisses=%d TasksShed=%d, want %d each",
				rep.Total.DeadlineMisses, rep.Total.TasksShed, n)
		}
	})
}

// TestWithPrioritySurvivesOverload pins the public SLO contract on the
// native backend: under a backlog far past the watermark, every
// priority-7 task still runs while the lowest class takes all the
// shedding.
func TestWithPrioritySurvivesOverload(t *testing.T) {
	rt, err := cool.NewRuntime(cool.Config{
		Processors: 1,
		Backend:    cool.BackendNative,
		Shed:       &cool.ShedPolicy{QueueHighWater: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	const low, high = 300, 30
	var ranLow, ranHigh atomic.Int64
	err = rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			for i := 0; i < low; i++ {
				ctx.Spawn("low", func(*cool.Ctx) {
					ranLow.Add(1)
					time.Sleep(100 * time.Microsecond)
				})
			}
			for i := 0; i < high; i++ {
				ctx.Spawn("high", func(*cool.Ctx) {
					ranHigh.Add(1)
					time.Sleep(100 * time.Microsecond)
				}, cool.WithPriority(7))
			}
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	rep := rt.Report()
	if ranHigh.Load() != high {
		t.Fatalf("only %d of %d priority-7 tasks ran", ranHigh.Load(), high)
	}
	if rep.Total.TasksShed == 0 {
		t.Fatal("overload shed nothing")
	}
	if got := ranLow.Load() + rep.Total.TasksShed; got != low {
		t.Fatalf("low ran %d + shed %d = %d, want %d", ranLow.Load(), rep.Total.TasksShed, got, low)
	}
}

// TestChurnFaultPlanPublicAPI round-trips the churn builders through
// validation, BuilderString, ChurnAdds, and the simulator's rejection.
func TestChurnFaultPlanPublicAPI(t *testing.T) {
	p := cool.NewFaultPlan().AddWorker(1000).Drain(1, 2000).AddWorker(3000)
	if got := p.ChurnAdds(); got != 2 {
		t.Fatalf("ChurnAdds = %d, want 2", got)
	}
	s := p.BuilderString()
	for _, want := range []string{"AddWorker(1000)", "Drain(1, 2000)", "AddWorker(3000)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("BuilderString %q missing %q", s, want)
		}
	}
	// The simulator has no pool: churn events must be rejected.
	_, err := cool.NewRuntime(cool.Config{Processors: 2, Faults: p})
	if err == nil || !strings.Contains(err.Error(), "BackendNative") {
		t.Fatalf("sim NewRuntime with churn plan = %v, want BackendNative rejection", err)
	}
}

// TestChurnFaultPlanNative runs a plan-driven grow and drain end to
// end on the native backend: the timekeeper arms the AddWorker, the
// drain retires the worker cleanly, and the report shows both.
func TestChurnFaultPlanNative(t *testing.T) {
	rt, err := cool.NewRuntime(cool.Config{
		Processors:    2,
		MaxProcessors: 3,
		Backend:       cool.BackendNative,
		Faults:        cool.NewFaultPlan().AddWorker(100_000).Drain(1, 600_000),
	})
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	const n = 600
	err = rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			for i := 0; i < n; i++ {
				ctx.Spawn("w", func(*cool.Ctx) {
					ran.Add(1)
					time.Sleep(10 * time.Microsecond)
				})
			}
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran.Load() != n {
		t.Fatalf("ran %d of %d tasks", ran.Load(), n)
	}
	rep := rt.Report()
	if rep.SetSplits != 0 {
		t.Fatalf("SetSplits=%d want 0", rep.SetSplits)
	}
	adds, drains := 0, 0
	for _, ev := range rep.PoolEvents {
		switch ev.Kind {
		case "add":
			adds++
		case "drain":
			drains++
		}
	}
	if adds != 1 || drains != 1 {
		t.Fatalf("PoolEvents: %d adds, %d drains (events %+v), want 1 each", adds, drains, rep.PoolEvents)
	}
}
