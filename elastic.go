package cool

import (
	"fmt"
	"sort"
)

// This file is the public surface of elastic worker pools and the SLO
// layer on the native backend: live pool growth (AddWorkers), planned
// worker retirement (Retire / RetireWorkers — a clean drain, distinct
// from a fault-injected kill), the pool-membership timeline reported
// after the run (PoolEvent), overload shedding (ShedPolicy, with
// per-spawn WithPriority / WithDeadline options), and the threshold
// autoscaler (AutoscalePolicy).

// ShedPolicy arms the native backend's SLO layer (Config.Shed):
// per-spawn priorities and deadlines are enforced at dispatch, and
// under overload the runtime sheds the lowest-priority work first. A
// shed task completes for every liveness mechanism (its waitfor scope,
// Run's termination) without running its body; the drops are counted in
// Counters.TasksShed and Counters.DeadlineMisses.
type ShedPolicy struct {
	// QueueHighWater is the machine-wide backlog per alive worker above
	// which shedding engages (default 64).
	QueueHighWater int
	// RetryShed defers below-priority-floor tasks through the retry
	// queue (requires Config.Retry) instead of dropping them; tasks
	// whose retry budget runs out are dropped, never aborted.
	RetryShed bool
}

// AutoscalePolicy (Config.Autoscale, native backend) runs a threshold
// autoscaler inside the runtime: each control epoch it compares the
// queued backlog per alive worker against the watermarks and calls
// AddWorkers or Retire. Requires Config.MaxProcessors headroom.
type AutoscalePolicy struct {
	// IntervalNS is the control epoch length in wall-clock nanoseconds
	// (default 1ms).
	IntervalNS int64
	// HighWater grows the pool when the backlog per alive worker
	// exceeds it (default 8); LowWater shrinks the pool when the
	// backlog falls below it while workers sit parked (default 1).
	HighWater, LowWater int
	// MinProcs and MaxProcs bound the pool size (defaults: Processors
	// and MaxProcessors).
	MinProcs, MaxProcs int
	// Step is the number of workers added or retired per epoch
	// (default 1).
	Step int
}

// PoolEvent is one worker-pool membership change, in occurrence order:
// "add" (AddWorkers or the autoscaler grew the pool), "drain" (planned
// retirement completed; DurationNS carries the request-to-completion
// latency and Moved the tasks re-homed), or "kill" (a fault-injected
// FailServer). A healthy fixed-size run reports no events.
type PoolEvent struct {
	Kind       string // "add", "drain", "kill"
	Proc       int    // the worker added or retired
	TimeNS     int64  // completion time, nanoseconds since Run started
	DurationNS int64  // drain only: request-to-completion latency
	Moved      int    // tasks re-homed off the retiring worker
}

// elasticErr reports an elastic-pool call on the wrong backend.
func (rt *Runtime) elasticErr(op string) error {
	if rt.backend != BackendNative {
		return fmt.Errorf("cool: %s requires Backend: BackendNative", op)
	}
	return fmt.Errorf("cool: %s requires spare capacity (Config.MaxProcessors)", op)
}

// AddWorkers grows the native worker pool by n mid-run, activating
// spare capacity reserved by Config.MaxProcessors. The new workers
// join the victim rings and accept placements immediately. Returns the
// processor ids added. Callable only while Run is executing.
func (rt *Runtime) AddWorkers(n int) ([]int, error) {
	if rt.backend != BackendNative {
		return nil, rt.elasticErr("AddWorkers")
	}
	return rt.nat.AddWorkers(n)
}

// Retire requests a planned drain of n workers (the runtime picks the
// victims): each stops accepting new placements, finishes its running
// task, and re-homes its queued work affinity-preserving — whole
// task-affinity sets move as a unit and never split. The request is
// asynchronous; completion appears as a "drain" PoolEvent. At least
// one worker always survives. Returns the ids chosen.
func (rt *Runtime) Retire(n int) ([]int, error) {
	if rt.backend != BackendNative {
		return nil, rt.elasticErr("Retire")
	}
	return rt.nat.DrainN(n)
}

// RetireWorkers is Retire for an explicit set of processor ids.
func (rt *Runtime) RetireWorkers(ids ...int) error {
	if rt.backend != BackendNative {
		return rt.elasticErr("RetireWorkers")
	}
	return rt.nat.Drain(ids...)
}

// PoolSize returns the number of workers currently accepting work:
// Processors on the simulator, the live elastic pool size on the
// native backend.
func (rt *Runtime) PoolSize() int {
	if rt.backend == BackendNative {
		return rt.nat.PoolSize()
	}
	return rt.cfg.Processors
}

// PoolEvents returns the pool-membership timeline (adds, drains,
// kills) ordered by completion time. Empty on the simulator and on
// healthy fixed-size native runs. Call after Run for a stable view.
func (rt *Runtime) PoolEvents() []PoolEvent {
	if rt.backend != BackendNative {
		return nil
	}
	evs := rt.nat.PoolEvents()
	out := make([]PoolEvent, len(evs))
	for i, e := range evs {
		out[i] = PoolEvent{Kind: e.Kind, Proc: e.Proc, TimeNS: e.TimeNS, DurationNS: e.DurationNS, Moved: e.Moved}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].TimeNS < out[b].TimeNS })
	return out
}
