package cool_test

import (
	"errors"
	"strings"
	"testing"

	cool "github.com/coolrts/cool"
)

func newRT(t *testing.T, procs int) *cool.Runtime {
	t.Helper()
	rt, err := cool.NewRuntime(cool.Config{Processors: procs})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestRunExecutesMain(t *testing.T) {
	rt := newRT(t, 4)
	ran := false
	if err := rt.Run(func(ctx *cool.Ctx) {
		ctx.Compute(100)
		ran = true
	}); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("main did not run")
	}
	if rt.ElapsedCycles() < 100 {
		t.Fatalf("elapsed = %d", rt.ElapsedCycles())
	}
}

func TestRunTwiceFails(t *testing.T) {
	rt := newRT(t, 2)
	if err := rt.Run(func(ctx *cool.Ctx) {}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(func(ctx *cool.Ctx) {}); err == nil {
		t.Fatal("second Run should fail")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := cool.NewRuntime(cool.Config{}); err == nil {
		t.Fatal("zero Processors should be rejected")
	}
	if _, err := cool.NewRuntime(cool.Config{Processors: 100}); err == nil {
		t.Fatal("100 processors should be rejected (max 64)")
	}
}

func TestWaitForDirectChildren(t *testing.T) {
	rt := newRT(t, 4)
	done := make([]bool, 10)
	err := rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			for i := 0; i < 10; i++ {
				i := i
				ctx.Spawn("child", func(c *cool.Ctx) {
					c.Compute(50)
					done[i] = true
				})
			}
		})
		for i, d := range done {
			if !d {
				t.Errorf("waitfor returned before child %d completed", i)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitForTransitive(t *testing.T) {
	// A task spawned by a descendant, outside any inner waitfor, still
	// belongs to the outer waitfor's dynamic extent.
	rt := newRT(t, 4)
	grandchildDone := false
	err := rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			ctx.Spawn("child", func(c *cool.Ctx) {
				c.Compute(10)
				c.Spawn("grandchild", func(g *cool.Ctx) {
					g.Compute(5000)
					grandchildDone = true
				})
			})
		})
		if !grandchildDone {
			t.Error("waitfor returned before transitively created task completed")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNestedWaitFor(t *testing.T) {
	rt := newRT(t, 4)
	var order []string
	err := rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			ctx.Spawn("outer", func(c *cool.Ctx) {
				c.WaitFor(func() {
					c.Spawn("inner", func(ci *cool.Ctx) {
						ci.Compute(100)
						order = append(order, "inner")
					})
				})
				order = append(order, "outer-after-inner")
			})
		})
		order = append(order, "main")
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "inner,outer-after-inner,main"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("order = %q, want %q", got, want)
	}
}

func TestEmptyWaitForDoesNotBlock(t *testing.T) {
	rt := newRT(t, 2)
	if err := rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {})
	}); err != nil {
		t.Fatal(err)
	}
}

func TestObjectAffinityRunsAtHome(t *testing.T) {
	rt := newRT(t, 32)
	objs := make([]*cool.F64, 16)
	for i := range objs {
		objs[i] = rt.NewF64Pages(1024, i*2)
	}
	homes := make([]int, len(objs))
	execs := make([]int, len(objs))
	err := rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			for i, o := range objs {
				i, o := i, o
				homes[i] = ctx.Home(o.Base)
				ctx.Spawn("work", func(c *cool.Ctx) {
					execs[i] = c.ProcID()
					for j := 0; j < o.Len(); j += 8 {
						c.ReadF64(o, j)
						c.Compute(4)
					}
				}, cool.ObjectAffinity(o.Base))
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	atHome := 0
	for i := range objs {
		if execs[i] == homes[i] {
			atHome++
		}
	}
	// With ample processors nearly every task should run at home.
	if atHome < len(objs)*3/4 {
		t.Fatalf("only %d/%d object-affinity tasks ran at home", atHome, len(objs))
	}
	rep := rt.Report()
	if rep.Total.HomeFraction() < 0.5 {
		t.Fatalf("home fraction = %.2f", rep.Total.HomeFraction())
	}
}

func TestProcessorAffinityHonored(t *testing.T) {
	rt := newRT(t, 8)
	execs := make([]int, 8)
	err := rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			for i := 0; i < 8; i++ {
				i := i
				ctx.Spawn("pinned", func(c *cool.Ctx) {
					execs[i] = c.ProcID()
					c.Compute(10000)
				}, cool.OnProcessor(i))
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	// All processors busy with equal work: no steals should displace them.
	for i, p := range execs {
		if p != i {
			t.Errorf("task pinned to %d ran on %d", i, p)
		}
	}
}

func TestTaskAffinitySetsRunBackToBack(t *testing.T) {
	// Tasks of the same set must execute consecutively on one processor.
	// Stealing is disabled so load balancing cannot legitimately move a
	// set mid-drain (set migration is covered by TestWholeSetStealing).
	rt, err := cool.NewRuntime(cool.Config{Processors: 4, Sched: cool.SchedPolicy{NoStealing: true}})
	if err != nil {
		t.Fatal(err)
	}
	setA := rt.NewF64Pages(8, 0)
	setB := rt.NewF64Pages(8, 0)
	type ev struct {
		set  string
		proc int
	}
	var log []ev
	err = rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			for i := 0; i < 6; i++ {
				which, obj := "A", setA
				if i%2 == 1 {
					which, obj = "B", setB
				}
				ctx.Spawn("t"+which, func(c *cool.Ctx) {
					log = append(log, ev{which, c.ProcID()})
					c.Compute(3000)
				}, cool.TaskAffinity(obj.Base))
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each set's tasks ran on a single processor.
	procOf := map[string]int{}
	for _, e := range log {
		if p, ok := procOf[e.set]; ok && p != e.proc {
			t.Fatalf("set %s ran on both proc %d and %d", e.set, p, e.proc)
		}
		procOf[e.set] = e.proc
	}
	// Two sets should use two different processors (load balance).
	if procOf["A"] == procOf["B"] {
		t.Fatalf("both sets on proc %d; sets should spread", procOf["A"])
	}
}

func TestWholeSetStealing(t *testing.T) {
	// When an idle processor steals a task-affinity set it takes the
	// whole set, so the remaining tasks still run back to back on the
	// thief.
	rt := newRT(t, 2)
	set := rt.NewF64Pages(8, 0)
	var procs []int
	err := rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			// Occupy processor 0 (where main runs) with the set's
			// server, then let processor 1 steal.
			for i := 0; i < 6; i++ {
				ctx.Spawn("set", func(c *cool.Ctx) {
					procs = append(procs, c.ProcID())
					c.Compute(4000)
				}, cool.TaskAffinity(set.Base))
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := rt.Report()
	if rep.Total.SetSteals == 0 {
		t.Skip("no set steal occurred in this schedule")
	}
	// After the (single) migration point, all tasks run on the thief:
	// the proc sequence has at most one change point.
	changes := 0
	for i := 1; i < len(procs); i++ {
		if procs[i] != procs[i-1] {
			changes++
		}
	}
	if changes > int(rep.Total.SetSteals) {
		t.Fatalf("set split more often (%d) than sets were stolen (%d): %v", changes, rep.Total.SetSteals, procs)
	}
}

func TestBaseModeIgnoresHints(t *testing.T) {
	rt, err := cool.NewRuntime(cool.Config{Processors: 8, Sched: cool.SchedPolicy{IgnoreHints: true}})
	if err != nil {
		t.Fatal(err)
	}
	obj := rt.NewF64Pages(8, 3)
	procs := map[int]bool{}
	err = rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			for i := 0; i < 16; i++ {
				ctx.Spawn("t", func(c *cool.Ctx) {
					procs[c.ProcID()] = true
					c.Compute(5000)
				}, cool.ObjectAffinity(obj.Base))
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) < 4 {
		t.Fatalf("base mode used only %d processors; expected round-robin spread", len(procs))
	}
}

func TestIdleProcessorsStealWork(t *testing.T) {
	// All tasks placed on processor 0; others must steal.
	rt := newRT(t, 4)
	procs := map[int]bool{}
	err := rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			for i := 0; i < 32; i++ {
				ctx.Spawn("t", func(c *cool.Ctx) {
					procs[c.ProcID()] = true
					c.Compute(20000)
				}, cool.OnProcessor(0))
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) < 3 {
		t.Fatalf("stealing failed: only %d processors participated", len(procs))
	}
	rep := rt.Report()
	if rep.Total.StealsLocal+rep.Total.StealsRemote == 0 {
		t.Fatal("no successful steals recorded")
	}
}

func TestClusterStealingOnlyStaysInCluster(t *testing.T) {
	rt, err := cool.NewRuntime(cool.Config{Processors: 8, Sched: cool.SchedPolicy{ClusterStealingOnly: true}})
	if err != nil {
		t.Fatal(err)
	}
	execs := map[int]bool{}
	err = rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			for i := 0; i < 32; i++ {
				ctx.Spawn("t", func(c *cool.Ctx) {
					execs[c.ProcID()] = true
					c.Compute(20000)
				}, cool.OnProcessor(0))
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for p := range execs {
		if p >= 4 {
			t.Fatalf("task leaked to processor %d outside cluster 0", p)
		}
	}
	if rt.Report().Total.StealsRemote != 0 {
		t.Fatal("remote steals recorded despite cluster-only policy")
	}
}

func TestMutexFunctionsSerialize(t *testing.T) {
	rt := newRT(t, 8)
	panel := rt.NewF64Pages(64, 0)
	mon := rt.NewMonitor(panel.Base)
	counter := 0
	err := rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			for i := 0; i < 20; i++ {
				ctx.Spawn("update", func(c *cool.Ctx) {
					// Unsynchronized read-modify-write over simulated
					// time: only safe if mutex tasks serialize.
					v := counter
					c.Compute(500)
					counter = v + 1
				}, cool.WithMutex(mon))
			}
		})
		if counter != 20 {
			t.Errorf("counter = %d, want 20 (mutex tasks interleaved)", counter)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Report().Total.LockBlocks == 0 {
		t.Fatal("expected contention on the monitor")
	}
}

func TestCondSignalWakesWaiter(t *testing.T) {
	rt := newRT(t, 4)
	mon := rt.NewMonitor(0)
	cv := &cool.Cond{}
	ready := false
	consumed := false
	err := rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			ctx.Spawn("consumer", func(c *cool.Ctx) {
				c.Lock(mon)
				for !ready {
					c.Wait(cv, mon)
				}
				consumed = true
				c.Unlock(mon)
			})
			ctx.Spawn("producer", func(c *cool.Ctx) {
				c.Compute(5000)
				c.Lock(mon)
				ready = true
				c.Signal(cv)
				c.Unlock(mon)
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !consumed {
		t.Fatal("consumer never woke")
	}
}

func TestBroadcastWakesAll(t *testing.T) {
	rt := newRT(t, 8)
	mon := rt.NewMonitor(0)
	cv := &cool.Cond{}
	released := false
	woke := 0
	err := rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			for i := 0; i < 5; i++ {
				ctx.Spawn("waiter", func(c *cool.Ctx) {
					c.Lock(mon)
					for !released {
						c.Wait(cv, mon)
					}
					woke++
					c.Unlock(mon)
				})
			}
			ctx.Spawn("releaser", func(c *cool.Ctx) {
				c.Compute(20000)
				c.Lock(mon)
				released = true
				c.Broadcast(cv)
				c.Unlock(mon)
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if woke != 5 {
		t.Fatalf("woke = %d, want 5", woke)
	}
}

func TestDeadlockReported(t *testing.T) {
	// Build a three-task deadlock exercising every kind of wait edge:
	// "holder" owns mon and parks on a condition variable nobody signals,
	// "contender" parks on mon itself, and main parks on the waitfor
	// scope covering both. One processor serializes the spawn order so
	// the wait-for graph is deterministic.
	rt := newRT(t, 1)
	mon := rt.NewMonitor(0xbeef0)
	mon2 := rt.NewMonitor(0xbeef8)
	cv := &cool.Cond{}
	err := rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			ctx.Spawn("holder", func(c *cool.Ctx) {
				c.Lock(mon)
				c.Lock(mon2)
				c.Wait(cv, mon2) // nobody signals; mon stays held
			})
			ctx.Spawn("contender", func(c *cool.Ctx) {
				c.Lock(mon) // blocks on holder forever
			})
		})
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
	var de *cool.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %T, want *cool.DeadlockError", err)
	}
	if len(de.Waits) != 3 {
		t.Fatalf("wait-for graph has %d edges, want 3:\n%v", len(de.Waits), err)
	}
	edges := map[string]cool.WaitEdge{}
	for _, w := range de.Waits {
		edges[w.Task] = w
	}
	if w := edges["contender"]; w.On != "monitor" || w.Object != 0xbeef0 || w.Holder != "holder" {
		t.Fatalf("contender edge = %+v, want monitor@0xbeef0 held by holder", w)
	}
	if w := edges["holder"]; w.On != "condition" {
		t.Fatalf("holder edge = %+v, want condition wait", w)
	}
	if w := edges["main"]; w.On != "scope" || w.Pending != 2 {
		t.Fatalf("main edge = %+v, want scope with 2 outstanding", w)
	}
	for _, want := range []string{`task "contender" waits on monitor@0xbeef0 held by "holder"`, `task "holder" waits on condition`, `task "main" waits on scope (2 task(s) outstanding)`} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("message %q\nmissing %q", err, want)
		}
	}
}

func TestMigrationMovesHome(t *testing.T) {
	rt := newRT(t, 32)
	arr := rt.NewF64Pages(4096, 0)
	var before, after int
	err := rt.Run(func(ctx *cool.Ctx) {
		before = ctx.Home(arr.Base)
		ctx.Migrate(arr.Base, int64(arr.Len())*8, 20)
		after = ctx.Home(arr.Base)
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := rt.MachineConfig()
	if cfg.ClusterOf(before) != 0 {
		t.Fatalf("before: home %d not in cluster 0", before)
	}
	if cfg.ClusterOf(after) != cfg.ClusterOf(20) {
		t.Fatalf("after: home %d not in cluster of proc 20", after)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int64, cool.Counters) {
		rt := newRT(t, 8)
		data := rt.NewF64Pages(1<<14, 0)
		err := rt.Run(func(ctx *cool.Ctx) {
			ctx.WaitFor(func() {
				for c := 0; c < 16; c++ {
					part := data.Slice(c*1024, (c+1)*1024)
					ctx.Spawn("sum", func(cx *cool.Ctx) {
						for i := 0; i < part.Len(); i++ {
							cx.ReadF64(part, i)
							cx.Compute(2)
						}
					}, cool.ObjectAffinity(part.Base))
				}
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		return rt.ElapsedCycles(), rt.Report().Total
	}
	c1, t1 := run()
	c2, t2 := run()
	if c1 != c2 || t1 != t2 {
		t.Fatalf("non-deterministic: %d vs %d cycles", c1, c2)
	}
}

func TestSpeedupWithMoreProcessors(t *testing.T) {
	// The most basic sanity check of the whole stack: an embarrassingly
	// parallel program must speed up with processors.
	elapsed := func(procs int) int64 {
		rt := newRT(t, procs)
		err := rt.Run(func(ctx *cool.Ctx) {
			ctx.WaitFor(func() {
				for i := 0; i < 64; i++ {
					i := i
					ctx.Spawn("work", func(c *cool.Ctx) {
						arr := c.NewF64(512)
						for j := 0; j < 512; j++ {
							c.WriteF64(arr, j, float64(i+j))
							c.Compute(20)
						}
					})
				}
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		return rt.ElapsedCycles()
	}
	t1 := elapsed(1)
	t8 := elapsed(8)
	speedup := float64(t1) / float64(t8)
	if speedup < 4 {
		t.Fatalf("speedup on 8 procs = %.2f, want >= 4", speedup)
	}
}

func TestPrefetchWarmsCache(t *testing.T) {
	rt := newRT(t, 4)
	arr := rt.NewF64Pages(1024, 2)
	err := rt.Run(func(ctx *cool.Ctx) {
		before := ctx.Now()
		ctx.Prefetch(arr.Base, int64(arr.Len())*8)
		issue := ctx.Now() - before

		// The prefetch must be cheap (issue cost only, not miss latency).
		if perLine := issue / int64(arr.Len()/8); perLine >= 10 {
			t.Errorf("prefetch issue cost %d cycles/line; should be far below miss latency", perLine)
		}
		// A subsequent read must hit in cache.
		before = ctx.Now()
		ctx.ReadF64Range(arr, 0, 512)
		readCost := ctx.Now() - before
		if perLine := readCost / 64; perLine > 2 {
			t.Errorf("post-prefetch read cost %d cycles/line; expected L1 hits", perLine)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := rt.Report().Total
	if tot.Prefetches != int64(arr.Len()/8) || tot.PrefetchFills == 0 {
		t.Fatalf("prefetch counters: %+v", tot)
	}
}

func TestPrefetchDoesNotStealDirtyLines(t *testing.T) {
	rt := newRT(t, 4)
	arr := rt.NewF64Pages(64, 0)
	err := rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			ctx.Spawn("writer", func(c *cool.Ctx) {
				c.WriteF64(arr, 0, 42)
			}, cool.OnProcessor(1))
		})
		ctx.WaitFor(func() {
			ctx.Spawn("prefetcher", func(c *cool.Ctx) {
				c.Prefetch(arr.Base, 64)
				// The dirty line was skipped: reading it must still be
				// a (dirty) miss, preserving coherence accounting.
				before := c.Now()
				c.ReadF64(arr, 0)
				if c.Now()-before < 30 {
					t.Error("read of dirty line serviced from a bogus prefetched copy")
				}
			}, cool.OnProcessor(2))
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMultiObjectAffinityPlacesAtBiggestHome(t *testing.T) {
	rt := newRT(t, 32)
	big := rt.NewF64Pages(4096, 9)    // 32 KB at proc 9
	small := rt.NewF64Pages(512, 17)  // 4 KB at proc 17
	small2 := rt.NewF64Pages(512, 25) // 4 KB at proc 25
	var ranOn int
	err := rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			ctx.Spawn("multi", func(c *cool.Ctx) {
				ranOn = c.ProcID()
				c.Compute(1000)
			},
				cool.ObjectAffinitySized(small.Base, 512*8),
				cool.ObjectAffinitySized(big.Base, 4096*8),
				cool.ObjectAffinitySized(small2.Base, 512*8),
			)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if ranOn != 9 {
		t.Fatalf("task ran on %d, want 9 (home of the largest object)", ranOn)
	}
	// The other objects were prefetched.
	if rt.Report().Total.Prefetches == 0 {
		t.Fatal("secondary objects not prefetched")
	}
}

func TestTracingRecordsLifecycle(t *testing.T) {
	rt, err := cool.NewRuntime(cool.Config{Processors: 4, TraceCapacity: 1000})
	if err != nil {
		t.Fatal(err)
	}
	mon := rt.NewMonitor(0)
	err = rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			for i := 0; i < 6; i++ {
				ctx.Spawn("worker", func(c *cool.Ctx) {
					c.Compute(5000)
				}, cool.WithMutex(mon), cool.OnProcessor(0))
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, e := range rt.TraceEvents() {
		kinds[e.Kind]++
	}
	if kinds["enqueue"] < 6 || kinds["run"] < 6 || kinds["done"] != 7 {
		t.Fatalf("lifecycle kinds incomplete: %v", kinds)
	}
	if kinds["block"] == 0 {
		t.Fatalf("mutex contention should record blocks: %v", kinds)
	}
	// Timeline renders one row per processor.
	tl := rt.TraceTimeline(20)
	if strings.Count(tl, "\n") != 4 {
		t.Fatalf("timeline rows:\n%s", tl)
	}
	if !strings.Contains(rt.TraceDump(), "worker") {
		t.Fatal("dump missing task name")
	}
}

func TestTracingDisabledByDefault(t *testing.T) {
	rt := newRT(t, 2)
	if err := rt.Run(func(ctx *cool.Ctx) { ctx.Compute(1) }); err != nil {
		t.Fatal(err)
	}
	if len(rt.TraceEvents()) != 0 {
		t.Fatal("events recorded without TraceCapacity")
	}
}

func TestReportString(t *testing.T) {
	rt := newRT(t, 2)
	if err := rt.Run(func(ctx *cool.Ctx) { ctx.Compute(10) }); err != nil {
		t.Fatal(err)
	}
	s := rt.Report().String()
	if !strings.Contains(s, "cycles=") || !strings.Contains(s, "tasks=") {
		t.Fatalf("report string malformed: %q", s)
	}
}
