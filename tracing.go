package cool

import (
	"io"

	"github.com/coolrts/cool/internal/trace"
)

// TraceEvent is one recorded scheduler occurrence: a task being enqueued,
// dispatched, stolen, blocked, made ready, or completed.
type TraceEvent struct {
	Time int64  // simulated cycle (native backend: nanoseconds since Run)
	Proc int    // processor (-1 when the event is not bound to one)
	Kind string // enqueue | run | steal | block | ready | done
	Task string
	Arg  int64 // kind-specific: target server, or victim processor for steals
}

// rawTraceEvents returns the backend's recorded events in time order.
func (rt *Runtime) rawTraceEvents() []trace.Event {
	if rt.backend == BackendNative {
		return rt.nat.TraceEvents()
	}
	return rt.sched.Trace.Events()
}

// TraceEvents returns the recorded scheduler events (empty unless
// Config.TraceCapacity was set). Call after Run.
func (rt *Runtime) TraceEvents() []TraceEvent {
	evs := rt.rawTraceEvents()
	out := make([]TraceEvent, len(evs))
	for i, e := range evs {
		out[i] = TraceEvent{
			Time: e.Time,
			Proc: int(e.Proc),
			Kind: e.Kind.String(),
			Task: e.Task,
			Arg:  e.Arg,
		}
	}
	return out
}

// replayLog rebuilds a trace log from the native backend's merged
// per-worker buffers, so the text renderers work on either backend.
func (rt *Runtime) replayLog() *trace.Log {
	if rt.backend != BackendNative {
		return rt.sched.Trace
	}
	evs := rt.nat.TraceEvents()
	l := trace.New(max(len(evs), 1))
	for _, e := range evs {
		l.Add(e.Time, int(e.Proc), e.Kind, e.Task, e.Arg)
	}
	return l
}

// TraceDump renders the recorded events as text, one per line.
func (rt *Runtime) TraceDump() string { return rt.replayLog().String() }

// TraceTimeline renders a per-processor utilization strip of the given
// width over the whole run: '#' busy, '+' partially busy, '.' idle.
func (rt *Runtime) TraceTimeline(width int) string {
	return rt.replayLog().Timeline(rt.cfg.Processors, rt.ElapsedCycles(), width)
}

// WriteChromeTrace writes the recorded events as Chrome trace_event JSON
// (load the file in Perfetto or chrome://tracing). Works on both
// backends; on the simulator one "microsecond" of the viewer timeline is
// one simulated cycle. Call after Run.
func (rt *Runtime) WriteChromeTrace(w io.Writer) error {
	return trace.WriteChrome(w, rt.rawTraceEvents(), rt.cfg.Processors, string(rt.backend.String()))
}

// enable wires a trace log of the given capacity into the scheduler.
func (rt *Runtime) enableTracing(capacity int) {
	rt.sched.Trace = trace.New(capacity)
}
