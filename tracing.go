package cool

import "github.com/coolrts/cool/internal/trace"

// TraceEvent is one recorded scheduler occurrence: a task being enqueued,
// dispatched, stolen, blocked, made ready, or completed.
type TraceEvent struct {
	Time int64  // simulated cycle
	Proc int    // processor (-1 when the event is not bound to one)
	Kind string // enqueue | run | steal | block | ready | done
	Task string
	Arg  int64 // kind-specific: target server, or victim processor for steals
}

// TraceEvents returns the recorded scheduler events (empty unless
// Config.TraceCapacity was set). Call after Run.
func (rt *Runtime) TraceEvents() []TraceEvent {
	evs := rt.sched.Trace.Events()
	out := make([]TraceEvent, len(evs))
	for i, e := range evs {
		out[i] = TraceEvent{
			Time: e.Time,
			Proc: int(e.Proc),
			Kind: e.Kind.String(),
			Task: e.Task,
			Arg:  e.Arg,
		}
	}
	return out
}

// TraceDump renders the recorded events as text, one per line.
func (rt *Runtime) TraceDump() string { return rt.sched.Trace.String() }

// TraceTimeline renders a per-processor utilization strip of the given
// width over the whole run: '#' busy, '+' partially busy, '.' idle.
func (rt *Runtime) TraceTimeline(width int) string {
	return rt.sched.Trace.Timeline(rt.cfg.Processors, rt.eng.MaxClock(), width)
}

// enable wires a trace log of the given capacity into the scheduler.
func (rt *Runtime) enableTracing(capacity int) {
	rt.sched.Trace = trace.New(capacity)
}
