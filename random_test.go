package cool_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	cool "github.com/coolrts/cool"
)

// randomProgram builds a randomized but deterministic task tree mixing
// every affinity kind, nested waitfors, monitors and memory traffic, and
// returns a digest of the run (elapsed cycles and counters). It is the
// repository's randomized integration test: any scheduling or
// synchronization bug tends to surface as a deadlock, a panic, a lost
// task, or non-determinism.
func randomProgram(t *testing.T, seed int64, procs int) (int64, cool.Counters) {
	t.Helper()
	rt, err := cool.NewRuntime(cool.Config{Processors: procs, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	objs := make([]*cool.F64, 8)
	for i := range objs {
		objs[i] = rt.NewF64Pages(512, rng.Intn(procs))
	}
	mons := []*cool.Monitor{rt.NewMonitor(objs[0].Base), rt.NewMonitor(objs[1].Base)}

	var spawned int64
	var body func(c *cool.Ctx, depth int)
	body = func(c *cool.Ctx, depth int) {
		o := objs[rng.Intn(len(objs))]
		for i := 0; i < o.Len(); i += 64 {
			if rng.Intn(2) == 0 {
				c.ReadF64Range(o, i, i+64)
			} else {
				c.WriteF64Range(o, i, i+64)
			}
		}
		c.Compute(int64(rng.Intn(2000)))
		if depth >= 3 {
			return
		}
		kids := rng.Intn(4)
		spawnKids := func() {
			for k := 0; k < kids; k++ {
				var opts []cool.SpawnOpt
				target := objs[rng.Intn(len(objs))]
				d := depth + 1
				switch rng.Intn(6) {
				case 0:
					opts = append(opts, cool.OnObject(target.Base))
				case 1:
					opts = append(opts, cool.TaskAffinity(target.Base))
				case 2:
					opts = append(opts, cool.ObjectAffinity(target.Base))
				case 3:
					opts = append(opts, cool.OnProcessor(rng.Intn(2*procs)))
				case 4:
					// Mutex tasks are leaves: a task that holds a
					// monitor while waiting (even transitively) for
					// another task needing the same monitor deadlocks —
					// a program error in COOL as well.
					opts = append(opts, cool.WithMutex(mons[rng.Intn(len(mons))]))
					d = 3
				case 5:
					// no hints
				}
				spawned++
				c.Spawn("rnd", func(cc *cool.Ctx) { body(cc, d) }, opts...)
			}
		}
		if rng.Intn(2) == 0 {
			c.WaitFor(spawnKids)
		} else {
			spawnKids()
		}
	}

	err = rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			for i := 0; i < 6; i++ {
				spawned++
				ctx.Spawn("root", func(c *cool.Ctx) { body(c, 0) })
			}
		})
	})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	rep := rt.Report()
	if rep.Total.TasksRun != spawned+1 { // +1 for main
		t.Fatalf("seed %d: ran %d tasks, spawned %d", seed, rep.Total.TasksRun, spawned)
	}
	return rt.ElapsedCycles(), rep.Total
}

func TestRandomProgramsComplete(t *testing.T) {
	f := func(seedRaw uint16, procsRaw uint8) bool {
		seed := int64(seedRaw) + 1
		procs := 1 + int(procsRaw)%16
		randomProgram(t, seed, procs)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomProgramsDeterministic(t *testing.T) {
	for _, seed := range []int64{3, 17, 99} {
		c1, t1 := randomProgram(t, seed, 8)
		c2, t2 := randomProgram(t, seed, 8)
		if c1 != c2 || t1 != t2 {
			t.Fatalf("seed %d: non-deterministic (%d vs %d cycles)", seed, c1, c2)
		}
	}
}
