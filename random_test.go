package cool_test

import (
	"errors"
	"math/rand"
	goruntime "runtime"
	"testing"
	"testing/quick"
	"time"

	cool "github.com/coolrts/cool"
)

// randomProgram builds a randomized but deterministic task tree mixing
// every affinity kind, nested waitfors, monitors and memory traffic, and
// returns a digest of the run (elapsed cycles and counters). It is the
// repository's randomized integration test: any scheduling or
// synchronization bug tends to surface as a deadlock, a panic, a lost
// task, or non-determinism.
func randomProgram(t *testing.T, seed int64, procs int) (int64, cool.Counters) {
	return randomProgramFaulted(t, seed, procs, nil)
}

// randomProgramFaulted is randomProgram under an optional fault plan: the
// same task tree must still complete every task exactly once while
// processors slow down, stall, or die underneath it.
func randomProgramFaulted(t *testing.T, seed int64, procs int, plan *cool.FaultPlan) (int64, cool.Counters) {
	t.Helper()
	rt, err := cool.NewRuntime(cool.Config{Processors: procs, Seed: seed, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	objs := make([]*cool.F64, 8)
	for i := range objs {
		objs[i] = rt.NewF64Pages(512, rng.Intn(procs))
	}
	mons := []*cool.Monitor{rt.NewMonitor(objs[0].Base), rt.NewMonitor(objs[1].Base)}

	var spawned int64
	var body func(c *cool.Ctx, depth int)
	body = func(c *cool.Ctx, depth int) {
		o := objs[rng.Intn(len(objs))]
		for i := 0; i < o.Len(); i += 64 {
			if rng.Intn(2) == 0 {
				c.ReadF64Range(o, i, i+64)
			} else {
				c.WriteF64Range(o, i, i+64)
			}
		}
		c.Compute(int64(rng.Intn(2000)))
		if depth >= 3 {
			return
		}
		kids := rng.Intn(4)
		spawnKids := func() {
			for k := 0; k < kids; k++ {
				var opts []cool.SpawnOpt
				target := objs[rng.Intn(len(objs))]
				d := depth + 1
				switch rng.Intn(6) {
				case 0:
					opts = append(opts, cool.OnObject(target.Base))
				case 1:
					opts = append(opts, cool.TaskAffinity(target.Base))
				case 2:
					opts = append(opts, cool.ObjectAffinity(target.Base))
				case 3:
					opts = append(opts, cool.OnProcessor(rng.Intn(2*procs)))
				case 4:
					// Mutex tasks are leaves: a task that holds a
					// monitor while waiting (even transitively) for
					// another task needing the same monitor deadlocks —
					// a program error in COOL as well.
					opts = append(opts, cool.WithMutex(mons[rng.Intn(len(mons))]))
					d = 3
				case 5:
					// no hints
				}
				spawned++
				c.Spawn("rnd", func(cc *cool.Ctx) { body(cc, d) }, opts...)
			}
		}
		if rng.Intn(2) == 0 {
			c.WaitFor(spawnKids)
		} else {
			spawnKids()
		}
	}

	err = rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			for i := 0; i < 6; i++ {
				spawned++
				ctx.Spawn("root", func(c *cool.Ctx) { body(c, 0) })
			}
		})
	})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	rep := rt.Report()
	if rep.Total.TasksRun != spawned+1 { // +1 for main
		t.Fatalf("seed %d: ran %d tasks, spawned %d", seed, rep.Total.TasksRun, spawned)
	}
	return rt.ElapsedCycles(), rep.Total
}

func TestRandomProgramsComplete(t *testing.T) {
	f := func(seedRaw uint16, procsRaw uint8) bool {
		seed := int64(seedRaw) + 1
		procs := 1 + int(procsRaw)%16
		randomProgram(t, seed, procs)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomProgramsDeterministic(t *testing.T) {
	for _, seed := range []int64{3, 17, 99} {
		c1, t1 := randomProgram(t, seed, 8)
		c2, t2 := randomProgram(t, seed, 8)
		if c1 != c2 || t1 != t2 {
			t.Fatalf("seed %d: non-deterministic (%d vs %d cycles)", seed, c1, c2)
		}
	}
}

// clustersFor mirrors the DASH default of four processors per cluster.
func clustersFor(procs int) int { return (procs + 3) / 4 }

// TestRandomProgramsSurviveRandomFaults throws randomized fault plans
// (slowdowns, stalls, memory degradation, and up to procs-1 permanent
// failures) at the randomized task tree: every seed must still complete
// all tasks, and each seed must replay identically.
func TestRandomProgramsSurviveRandomFaults(t *testing.T) {
	f := func(seedRaw uint16, procsRaw uint8) bool {
		seed := int64(seedRaw) + 1
		procs := 2 + int(procsRaw)%15
		plan := cool.RandomFaultPlan(seed, procs, clustersFor(procs), 5)
		c1, t1 := randomProgramFaulted(t, seed, procs, plan)
		if t.Failed() {
			return false
		}
		c2, t2 := randomProgramFaulted(t, seed, procs, plan)
		if c1 != c2 || t1 != t2 {
			t.Errorf("seed %d procs %d: faulted run non-deterministic (%d vs %d cycles)", seed, procs, c1, c2)
		}
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomInjectedPanicsAreDeterministic plants a panic into a random
// root task: the run must fail with a typed *cool.TaskPanicError that
// strikes the same processor at the same simulated cycle every time.
func TestRandomInjectedPanicsAreDeterministic(t *testing.T) {
	run := func(seed int64, nth int) *cool.TaskPanicError {
		plan := cool.NewFaultPlan().PanicTask("root", nth)
		rt, err := cool.NewRuntime(cool.Config{Processors: 8, Seed: seed, Faults: plan})
		if err != nil {
			t.Fatal(err)
		}
		err = rt.Run(func(ctx *cool.Ctx) {
			ctx.WaitFor(func() {
				for i := 0; i < 6; i++ {
					ctx.Spawn("root", func(c *cool.Ctx) { c.Compute(1000) })
				}
			})
		})
		var pe *cool.TaskPanicError
		if !errors.As(err, &pe) {
			t.Fatalf("seed %d nth %d: err = %v (%T), want *cool.TaskPanicError", seed, nth, err, err)
		}
		return pe
	}
	for _, seed := range []int64{5, 21} {
		for _, nth := range []int{0, 3, 5} {
			a, b := run(seed, nth), run(seed, nth)
			if a.Task != "root" || !a.Injected {
				t.Fatalf("panic error = %+v, want injected panic in root", a)
			}
			if a.Proc != b.Proc || a.Time != b.Time {
				t.Fatalf("seed %d nth %d: panic not deterministic (P%d@%d vs P%d@%d)",
					seed, nth, a.Proc, a.Time, b.Proc, b.Time)
			}
		}
	}
}

// TestNoGoroutineLeakUnderFaults mirrors the engine leak tests at the
// public layer: repeated faulted runs — including ones ending in injected
// panics, which kill redistributed and parked coroutines — must not
// accumulate goroutines.
func TestNoGoroutineLeakUnderFaults(t *testing.T) {
	baseline := goruntime.NumGoroutine()
	for i := 0; i < 30; i++ {
		seed := int64(i + 1)
		plan := cool.RandomFaultPlan(seed, 8, clustersFor(8), 4)
		if i%2 == 1 {
			plan.PanicTask("rnd", i%5) // may or may not strike; both fine
		}
		rt, err := cool.NewRuntime(cool.Config{Processors: 8, Seed: seed, Faults: plan})
		if err != nil {
			t.Fatal(err)
		}
		runRandomTree(t, rt, seed)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if goruntime.NumGoroutine() <= baseline+5 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d", baseline, goruntime.NumGoroutine())
}

// runRandomTree runs a small spawn tree where only a *TaskPanicError from
// an armed injection is an acceptable failure.
func runRandomTree(t *testing.T, rt *cool.Runtime, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	err := rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			for i := 0; i < 8; i++ {
				n := int64(rng.Intn(3000))
				ctx.Spawn("rnd", func(c *cool.Ctx) {
					c.Compute(500 + n)
					if n%3 == 0 {
						c.WaitFor(func() {
							c.Spawn("rnd", func(cc *cool.Ctx) { cc.Compute(n) })
						})
					}
				})
			}
		})
	})
	if err != nil {
		var pe *cool.TaskPanicError
		if !errors.As(err, &pe) || !pe.Injected {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
