package cool_test

import (
	"testing"

	cool "github.com/coolrts/cool"
)

// TestCounterSnapshotConsistent asserts Runtime.CounterSnapshot — the
// adaptive controller's cheap counter-read API — reports the same
// quantities as the full perfmon Report on both backends after a run:
// the cumulative columns match the summed per-processor rows exactly
// (on the native backend they come from a separate atomic mirror bumped
// at the same sites), Completed covers every executed task, and the
// queue/park gauges read zero on a drained machine.
func TestCounterSnapshotConsistent(t *testing.T) {
	const procs, tasks = 4, 300
	for _, be := range backends {
		be := be
		t.Run(be.name, func(t *testing.T) {
			r := runWorkload(t, be.b, procs, tasks)
			rt := lastRuntime
			if rt == nil {
				t.Fatal("capture hook did not observe the runtime")
			}
			s := rt.CounterSnapshot()
			total := r.Total

			cols := []struct {
				name      string
				snap, rep int64
			}{
				{"StealTries", s.StealTries, total.StealTries},
				{"FailedSteals", s.FailedSteals, total.FailedSteals},
				{"StealsLocal", s.StealsLocal, total.StealsLocal},
				{"StealsRemote", s.StealsRemote, total.StealsRemote},
				{"SetSteals", s.SetSteals, total.SetSteals},
				{"TargetedWakes", s.TargetedWakes, total.TargetedWakes},
				{"BroadcastWakes", s.BroadcastWakes, total.BroadcastWakes},
				{"LockContention", s.LockContention, total.LockContention},
				{"TasksShed", s.TasksShed, total.TasksShed},
				{"DeadlineMisses", s.DeadlineMisses, total.DeadlineMisses},
			}
			for _, c := range cols {
				if c.snap != c.rep {
					t.Errorf("%s: snapshot %d != report %d", c.name, c.snap, c.rep)
				}
			}
			if s.Completed != total.TasksRun+total.TasksShed {
				t.Errorf("Completed = %d, want TasksRun+TasksShed = %d",
					s.Completed, total.TasksRun+total.TasksShed)
			}
			if s.Queued != 0 {
				t.Errorf("Queued = %d after a drained run, want 0", s.Queued)
			}
			if s.Workers != int64(procs) {
				t.Errorf("Workers = %d, want %d", s.Workers, procs)
			}
			if s.Parked < 0 || s.Parked > int64(procs) {
				t.Errorf("Parked = %d outside [0,%d]", s.Parked, procs)
			}

			// The epoch-delta view: a second reading minus the first must
			// be all-zero on the cumulative columns of an idle machine.
			d := rt.CounterSnapshot().Delta(s)
			if d.StealTries != 0 || d.FailedSteals != 0 || d.Completed != 0 {
				t.Errorf("idle-machine delta not zero: %+v", d)
			}
		})
	}
}

// TestAdaptWarmStart asserts AdaptPolicy.Start seeds the controller on
// both backends: the initial and (with no epochs elapsing) final policy
// vectors equal the warm state, and the empty decision trace replays to
// it.
func TestAdaptWarmStart(t *testing.T) {
	warm := cool.AdaptState{ClusterOnly: true, WakeFanout: 8}
	for _, be := range backends {
		be := be
		t.Run(be.name, func(t *testing.T) {
			rt, err := cool.NewRuntime(cool.Config{
				Processors: 4,
				Backend:    be.b,
				Adapt:      &cool.AdaptPolicy{Epoch: 1 << 40, Start: &warm},
			})
			if err != nil {
				t.Fatal(err)
			}
			done := rt.NewI64(1, 0)
			if err := rt.Run(func(ctx *cool.Ctx) {
				ctx.Spawn("task", func(c *cool.Ctx) { c.AddI64(done, 0, 1) })
			}); err != nil {
				t.Fatal(err)
			}
			init, ok := rt.AdaptInitialState()
			if !ok || init != warm {
				t.Fatalf("AdaptInitialState = %+v, %v; want warm state %+v", init, ok, warm)
			}
			st, ok := rt.AdaptState()
			if !ok || st != warm {
				t.Fatalf("AdaptState = %+v, %v; want warm state %+v", st, ok, warm)
			}
			if got := cool.ReplayAdaptDecisions(init, rt.Report().Decisions); got != st {
				t.Fatalf("replay = %+v, want %+v", got, st)
			}
		})
	}
}

// lastRuntime captures the most recent runtime runWorkload constructed,
// via the package capture hook, so tests can reach non-Report accessors.
var lastRuntime *cool.Runtime

func TestMain(m *testing.M) {
	restore := cool.CaptureRuntime(func(rt *cool.Runtime) { lastRuntime = rt })
	defer restore()
	m.Run()
}
