package cool

import (
	"fmt"
	"strings"

	"github.com/coolrts/cool/internal/core"
	"github.com/coolrts/cool/internal/native"
	"github.com/coolrts/cool/internal/sim"
)

// UnsupportedOnNativeError is returned by NewRuntime when a
// configuration option that requires the simulated machine itself —
// Machine (latency/cache overrides), CycleLimit (a bound on simulated
// time), or Quantum (interleaving control) — is combined with
// BackendNative. Fault plans, retries, and deadlines are NOT rejected:
// they run natively with cycle quantities read as wall-clock
// nanoseconds. Callers that want to run the same Config on both
// backends should strip the sim-only options for the native run rather
// than treat this as a failure.
type UnsupportedOnNativeError struct {
	Option string // the Config field that cannot apply natively
}

func (e *UnsupportedOnNativeError) Error() string {
	return fmt.Sprintf("cool: Config.%s requires simulated time and is unsupported on the native backend", e.Option)
}

// TaskPanicError is returned by Run when a task's body panicked (or a
// fault plan injected a panic into it). It carries the task's identity,
// the processor it was running on, and the simulated time of the
// failure, so faulted runs can be diagnosed and replayed.
type TaskPanicError struct {
	Task     string // task label passed to Spawn ("main" for the root task)
	Proc     int    // processor the task was running on
	Time     int64  // simulated cycle of the panic
	Value    any    // the panic value
	Stack    string // goroutine stack at the panic
	Injected bool   // true when planted by a fault plan
}

func (e *TaskPanicError) Error() string {
	kind := "panicked"
	if e.Injected {
		kind = "panicked (injected fault)"
	}
	return fmt.Sprintf("cool: task %q %s on P%d at cycle %d: %v", e.Task, kind, e.Proc, e.Time, e.Value)
}

// WaitEdge is one edge of a deadlock's wait-for graph: a blocked task
// and the synchronization object it waits on.
type WaitEdge struct {
	Task    string // blocked task's label
	On      string // "monitor", "condition", or "scope"
	Object  int64  // monitor's object address (0 when none)
	Holder  string // task holding the monitor ("" when none/unknown)
	Pending int    // outstanding tasks in the scope (scope edges only)
}

func (w WaitEdge) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "task %q waits on %s", w.Task, w.On)
	if w.On == "monitor" && w.Object != 0 {
		fmt.Fprintf(&b, "@%#x", w.Object)
	}
	if w.Holder != "" {
		fmt.Fprintf(&b, " held by %q", w.Holder)
	}
	if w.On == "scope" {
		fmt.Fprintf(&b, " (%d task(s) outstanding)", w.Pending)
	}
	return b.String()
}

// DeadlockError is returned by Run when tasks remain blocked forever.
// Waits lists each blocked task with the monitor, condition variable, or
// waitfor scope it is parked on — the wait-for graph of the deadlock.
type DeadlockError struct {
	Time  int64 // simulated cycle the run stopped
	Waits []WaitEdge
}

func (e *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cool: deadlock at cycle %d: %d task(s) blocked forever", e.Time, len(e.Waits))
	for _, w := range e.Waits {
		b.WriteString("\n  ")
		b.WriteString(w.String())
	}
	return b.String()
}

// NoProgressError is returned by Run when the no-progress watchdog
// fired with work still outstanding: on the simulator, Config.CycleLimit
// was set and simulated time passed it; on the native backend, no task
// completed for the watchdog window (armed automatically when faults or
// retries are configured) while tasks remained live. It carries a clock
// and queue snapshot instead of letting the run spin (or hang) forever.
type NoProgressError struct {
	// CycleLimit is the limit that fired: Config.CycleLimit in
	// simulated cycles, or the native watchdog window in wall-clock
	// nanoseconds.
	CycleLimit   int64
	Time         int64   // simulated cycle the watchdog fired
	LiveTasks    int     // tasks not yet run to completion
	BlockedTasks int     // tasks parked on synchronization
	Clocks       []int64 // per-processor clocks at the stop
	Snapshot     string  // scheduler queue state
}

func (e *NoProgressError) Error() string {
	s := fmt.Sprintf("cool: no progress: cycle limit %d exceeded at t=%d with %d live task(s), %d blocked",
		e.CycleLimit, e.Time, e.LiveTasks, e.BlockedTasks)
	if e.Snapshot != "" {
		s += "\n  " + e.Snapshot
	}
	return s
}

// TaskAbortError is returned by Run when a transient launch failure
// (a FailTask event or a FlakyProcessor window) struck a task and the
// retry budget — zero attempts without Config.Retry — was exhausted.
type TaskAbortError struct {
	Task     string // task label passed to Spawn
	Proc     int    // processor whose launch attempt failed last
	Time     int64  // simulated cycle of the final abort
	Attempts int    // launch attempts that failed (including the first)
}

func (e *TaskAbortError) Error() string {
	return fmt.Sprintf("cool: task %q failed transiently on P%d at cycle %d: retry budget exhausted after %d aborted attempt(s)",
		e.Task, e.Proc, e.Time, e.Attempts)
}

// DeadlineExceededError is returned by Run when Config.Deadline was set
// and simulated time passed it with work still outstanding. Unlike
// NoProgressError (a watchdog against runaway simulations), the
// deadline is a hard budget on an otherwise healthy run, so the error
// carries a progress snapshot: per-server queue depths and the blocked
// tasks with what they wait on.
type DeadlineExceededError struct {
	Deadline     int64
	Time         int64      // simulated cycle the run stopped
	LiveTasks    int        // tasks not yet run to completion
	BlockedTasks int        // tasks parked on synchronization
	Clocks       []int64    // per-processor clocks at the stop
	QueueDepths  []int      // queued tasks per server (-1 = dead server)
	Waits        []WaitEdge // wait-for edges of the blocked tasks
}

func (e *DeadlineExceededError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cool: deadline %d exceeded at t=%d with %d live task(s), %d blocked; queues=%v",
		e.Deadline, e.Time, e.LiveTasks, e.BlockedTasks, e.QueueDepths)
	for _, w := range e.Waits {
		b.WriteString("\n  ")
		b.WriteString(w.String())
	}
	return b.String()
}

// wrapRunError converts engine-level failures into the public typed
// errors.
func (rt *Runtime) wrapRunError(err error) error {
	if err == nil {
		return nil
	}
	switch f := err.(type) {
	case *sim.TaskFailure:
		return &TaskPanicError{
			Task:     f.Task,
			Proc:     f.Proc,
			Time:     f.Time,
			Value:    f.Value,
			Stack:    f.Stack,
			Injected: f.Injected,
		}
	case *sim.DeadlockError:
		de := &DeadlockError{Time: f.Time}
		for _, t := range f.Tasks {
			de.Waits = append(de.Waits, waitEdge(t))
		}
		return de
	case *sim.TaskAbort:
		return &TaskAbortError{
			Task:     f.Task,
			Proc:     f.Proc,
			Time:     f.Time,
			Attempts: f.Attempts,
		}
	case *sim.DeadlineError:
		de := &DeadlineExceededError{
			Deadline:     f.Deadline,
			Time:         f.Time,
			LiveTasks:    f.Live,
			BlockedTasks: len(f.Blocked),
			Clocks:       f.Clocks,
			QueueDepths:  rt.sched.QueueDepths(),
		}
		for _, t := range f.Blocked {
			de.Waits = append(de.Waits, waitEdge(t))
		}
		return de
	case *sim.WatchdogError:
		return &NoProgressError{
			CycleLimit:   f.Limit,
			Time:         f.Time,
			LiveTasks:    f.Live,
			BlockedTasks: f.Blocked,
			Clocks:       f.Clocks,
			Snapshot:     f.Snapshot,
		}
	}
	return err
}

// wrapNativeError converts native-runtime failures into the public
// typed errors. Time is wall-clock nanoseconds since Run started, and
// every cycle-denominated field (Deadline, CycleLimit) carries the
// nanosecond quantity the native run was configured with. Fields that
// only the simulator can know — per-processor Clocks and the
// blocked-task wait-for graph — stay zero.
func (rt *Runtime) wrapNativeError(err error) error {
	if err == nil {
		return nil
	}
	switch f := err.(type) {
	case *native.TaskFailure:
		return &TaskPanicError{
			Task:     f.Task,
			Proc:     f.Proc,
			Time:     f.Time,
			Value:    f.Value,
			Stack:    f.Stack,
			Injected: f.Injected,
		}
	case *native.TaskAbort:
		return &TaskAbortError{
			Task:     f.Task,
			Proc:     f.Proc,
			Time:     f.Time,
			Attempts: f.Attempts,
		}
	case *native.DeadlineError:
		return &DeadlineExceededError{
			Deadline:    f.DeadlineNS,
			Time:        f.Time,
			LiveTasks:   f.Live,
			QueueDepths: f.QueueDepths,
		}
	case *native.NoProgressError:
		return &NoProgressError{
			CycleLimit: f.WindowNS,
			Time:       f.Time,
			LiveTasks:  f.Live,
			Snapshot:   f.Snapshot,
		}
	}
	return err
}

// waitEdge derives the wait-for edge for one blocked task from the
// BlockedOn marker its descriptor recorded before parking.
func waitEdge(t *sim.Task) WaitEdge {
	w := WaitEdge{Task: t.Name, On: "unknown"}
	td, ok := t.Data.(*core.TaskDesc)
	if !ok {
		return w
	}
	switch on := td.BlockedOn.(type) {
	case *core.Monitor:
		w.On = "monitor"
		w.Object = on.Addr
		if o := on.Owner(); o != nil && o.T != nil {
			w.Holder = o.T.Name
		}
	case *core.Cond:
		w.On = "condition"
	case *core.Scope:
		w.On = "scope"
		w.Pending = on.Pending()
	}
	return w
}
