package cool_test

import (
	"testing"

	cool "github.com/coolrts/cool"
)

// backends lists the execution backends every consistency test runs on.
var backends = []struct {
	name string
	b    cool.Backend
}{
	{"sim", cool.BackendSim},
	{"native", cool.BackendNative},
}

// runWorkload executes a spawn-heavy workload — a mutex-guarded counter
// plus task-affinity sets — and returns the report. It is deliberately
// contended so wake and lock counters have something to count.
func runWorkload(t *testing.T, backend cool.Backend, procs, tasks int) cool.Report {
	t.Helper()
	rt, err := cool.NewRuntime(cool.Config{Processors: procs, Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	counter := rt.NewI64(1, 0)
	set := rt.NewI64(8, 0)
	var mu cool.Monitor
	err = rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			for i := 0; i < tasks; i++ {
				i := i
				ctx.Spawn("count", func(c *cool.Ctx) {
					c.Lock(&mu)
					c.AddI64(counter, 0, 1)
					c.Unlock(&mu)
				}, cool.TaskAffinity(set.Addr(i%8)))
			}
		})
	})
	if err != nil {
		t.Fatalf("%v backend: %v", backend, err)
	}
	if got := counter.Data[0]; got != int64(tasks) {
		t.Fatalf("%v backend: counter = %d, want %d", backend, got, tasks)
	}
	return rt.Report()
}

// TestReportCountersConsistent asserts the runtime counters that the
// paper's instrumentation relies on are reported with the same meaning
// on both backends: every spawn becomes exactly one executed task, wake
// counters account for the spawns that found the machine (partially)
// idle, and the fault-path counters stay zero on a healthy run.
func TestReportCountersConsistent(t *testing.T) {
	const procs, tasks = 4, 300
	for _, be := range backends {
		be := be
		t.Run(be.name, func(t *testing.T) {
			r := runWorkload(t, be.b, procs, tasks)
			total := r.Total

			// tasks: the spawned workload plus the main task, each run once.
			if total.TasksRun != tasks+1 {
				t.Errorf("TasksRun = %d, want %d", total.TasksRun, tasks+1)
			}
			if total.Spawns != tasks {
				t.Errorf("Spawns = %d, want %d", total.Spawns, tasks)
			}
			// Per-processor rows must sum to the machine total.
			var perSum int64
			for _, p := range r.Per {
				perSum += p.TasksRun
			}
			if perSum != total.TasksRun {
				t.Errorf("sum of per-processor TasksRun = %d, total = %d", perSum, total.TasksRun)
			}

			// Wakes: both kinds must be non-negative and bounded by what
			// could possibly have triggered them — a spawn, a task
			// becoming runnable again (monitor handoff, scope completion)
			// or a contended lock release wakes at most once each.
			if total.TargetedWakes < 0 || total.BroadcastWakes < 0 {
				t.Errorf("negative wake counters: targeted=%d broadcast=%d",
					total.TargetedWakes, total.BroadcastWakes)
			}
			wakeBudget := total.Spawns + total.TasksRun + total.LockBlocks
			if total.TargetedWakes+total.BroadcastWakes > wakeBudget {
				t.Errorf("wakes %d+%d exceed the %d events that can trigger them",
					total.TargetedWakes, total.BroadcastWakes, wakeBudget)
			}

			// Fault machinery must be silent on a healthy, fault-free run.
			if total.Retries != 0 || total.GaveUp != 0 {
				t.Errorf("healthy run reported Retries=%d GaveUp=%d", total.Retries, total.GaveUp)
			}
			if total.FaultEvents != 0 || total.Redistributed != 0 {
				t.Errorf("healthy run reported FaultEvents=%d Redistributed=%d",
					total.FaultEvents, total.Redistributed)
			}

			// Whole-set stealing is the default: sets must never split.
			if r.SetSplits != 0 {
				t.Errorf("SetSplits = %d, want 0", r.SetSplits)
			}
			if r.Processors != procs {
				t.Errorf("Processors = %d, want %d", r.Processors, procs)
			}
		})
	}
}

// TestWakeCountersObserved asserts each backend actually exercises the
// two-level wakeup scheme on a parallel machine: spawning from a running
// task while other processors idle must produce at least one wake.
func TestWakeCountersObserved(t *testing.T) {
	for _, be := range backends {
		be := be
		t.Run(be.name, func(t *testing.T) {
			r := runWorkload(t, be.b, 8, 400)
			if r.Total.TargetedWakes+r.Total.BroadcastWakes == 0 {
				t.Errorf("no wakes recorded on an 8-processor machine running 400 tasks")
			}
		})
	}
}

// TestRetryCountersThroughReport runs a transient-fault workload under a
// retry policy on the simulator and asserts the retry counters flow
// through Report (the native backend rejects fault plans, so this half
// is sim-only; the healthy-run zero assertions above cover native).
func TestRetryCountersThroughReport(t *testing.T) {
	plan := cool.NewFaultPlan().FailTask("flaky", 1)
	rt, err := cool.NewRuntime(cool.Config{
		Processors: 4,
		Faults:     plan,
		Retry:      &cool.RetryPolicy{MaxAttempts: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			for i := 0; i < 8; i++ {
				ctx.Spawn("flaky", func(c *cool.Ctx) { c.Compute(10) })
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rt.Report()
	if r.Total.Retries == 0 {
		t.Error("fault plan injected transient failures but Report shows Retries = 0")
	}
	if r.Total.GaveUp != 0 {
		t.Errorf("run succeeded but Report shows GaveUp = %d", r.Total.GaveUp)
	}
	var perRetries int64
	for _, p := range r.Per {
		perRetries += p.Retries
	}
	if perRetries != r.Total.Retries {
		t.Errorf("per-processor Retries sum %d != total %d", perRetries, r.Total.Retries)
	}
}
