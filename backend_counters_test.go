package cool_test

import (
	"testing"
	"time"

	cool "github.com/coolrts/cool"
)

// backends lists the execution backends every consistency test runs on.
var backends = []struct {
	name string
	b    cool.Backend
}{
	{"sim", cool.BackendSim},
	{"native", cool.BackendNative},
}

// runWorkload executes a spawn-heavy workload — a mutex-guarded counter
// plus task-affinity sets — and returns the report. It is deliberately
// contended so wake and lock counters have something to count.
func runWorkload(t *testing.T, backend cool.Backend, procs, tasks int) cool.Report {
	t.Helper()
	rt, err := cool.NewRuntime(cool.Config{Processors: procs, Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	counter := rt.NewI64(1, 0)
	set := rt.NewI64(8, 0)
	var mu cool.Monitor
	err = rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			for i := 0; i < tasks; i++ {
				i := i
				ctx.Spawn("count", func(c *cool.Ctx) {
					c.Lock(&mu)
					c.AddI64(counter, 0, 1)
					c.Unlock(&mu)
				}, cool.TaskAffinity(set.Addr(i%8)))
			}
		})
	})
	if err != nil {
		t.Fatalf("%v backend: %v", backend, err)
	}
	if got := counter.Data[0]; got != int64(tasks) {
		t.Fatalf("%v backend: counter = %d, want %d", backend, got, tasks)
	}
	return rt.Report()
}

// TestReportCountersConsistent asserts the runtime counters that the
// paper's instrumentation relies on are reported with the same meaning
// on both backends: every spawn becomes exactly one executed task, wake
// counters account for the spawns that found the machine (partially)
// idle, and the fault-path counters stay zero on a healthy run.
func TestReportCountersConsistent(t *testing.T) {
	const procs, tasks = 4, 300
	for _, be := range backends {
		be := be
		t.Run(be.name, func(t *testing.T) {
			r := runWorkload(t, be.b, procs, tasks)
			total := r.Total

			// tasks: the spawned workload plus the main task, each run once.
			if total.TasksRun != tasks+1 {
				t.Errorf("TasksRun = %d, want %d", total.TasksRun, tasks+1)
			}
			if total.Spawns != tasks {
				t.Errorf("Spawns = %d, want %d", total.Spawns, tasks)
			}
			// Per-processor rows must sum to the machine total.
			var perSum int64
			for _, p := range r.Per {
				perSum += p.TasksRun
			}
			if perSum != total.TasksRun {
				t.Errorf("sum of per-processor TasksRun = %d, total = %d", perSum, total.TasksRun)
			}

			// Wakes: both kinds must be non-negative and bounded by what
			// could possibly have triggered them — a spawn, a task
			// becoming runnable again (monitor handoff, scope completion)
			// or a contended lock release wakes at most once each.
			if total.TargetedWakes < 0 || total.BroadcastWakes < 0 {
				t.Errorf("negative wake counters: targeted=%d broadcast=%d",
					total.TargetedWakes, total.BroadcastWakes)
			}
			wakeBudget := total.Spawns + total.TasksRun + total.LockBlocks
			if total.TargetedWakes+total.BroadcastWakes > wakeBudget {
				t.Errorf("wakes %d+%d exceed the %d events that can trigger them",
					total.TargetedWakes, total.BroadcastWakes, wakeBudget)
			}

			// Fault machinery must be silent on a healthy, fault-free run.
			if total.Retries != 0 || total.GaveUp != 0 {
				t.Errorf("healthy run reported Retries=%d GaveUp=%d", total.Retries, total.GaveUp)
			}
			if total.FaultEvents != 0 || total.Redistributed != 0 {
				t.Errorf("healthy run reported FaultEvents=%d Redistributed=%d",
					total.FaultEvents, total.Redistributed)
			}

			// Whole-set stealing is the default: sets must never split.
			if r.SetSplits != 0 {
				t.Errorf("SetSplits = %d, want 0", r.SetSplits)
			}
			if r.Processors != procs {
				t.Errorf("Processors = %d, want %d", r.Processors, procs)
			}
		})
	}
}

// TestWakeCountersObserved asserts each backend actually exercises the
// two-level wakeup scheme on a parallel machine: spawning from a running
// task while other processors idle must produce at least one wake. Wakes
// count only actual token deposits, so a native run can legitimately see
// zero when the spawner outraces its siblings' first park — retry a few
// times rather than assert on one race outcome.
func TestWakeCountersObserved(t *testing.T) {
	for _, be := range backends {
		be := be
		t.Run(be.name, func(t *testing.T) {
			for attempt := 0; attempt < 5; attempt++ {
				r := runWorkload(t, be.b, 8, 400)
				if r.Total.TargetedWakes+r.Total.BroadcastWakes > 0 {
					return
				}
			}
			t.Errorf("no wakes recorded across 5 runs of 400 tasks on an 8-processor machine")
		})
	}
}

// TestNoWakesOnLoneProcessor is the counter-inflation regression guard:
// on a single-processor machine the enqueuing worker is by definition
// running, so the parked mask is empty at every wake decision and no
// token is ever deposited. A wake counter that increments on the
// decision rather than the deposit shows up here as hundreds of
// phantom wakes.
func TestNoWakesOnLoneProcessor(t *testing.T) {
	for _, be := range backends {
		be := be
		t.Run(be.name, func(t *testing.T) {
			r := runWorkload(t, be.b, 1, 400)
			if n := r.Total.TargetedWakes + r.Total.BroadcastWakes; n != 0 {
				t.Errorf("lone-processor run recorded %d wakes (targeted=%d broadcast=%d), want 0",
					n, r.Total.TargetedWakes, r.Total.BroadcastWakes)
			}
		})
	}
}

// TestRetryCountersThroughReport runs a transient-fault workload under a
// retry policy on both backends and asserts the retry counters flow
// through Report with the same meaning: a successful faulted run shows
// the retries it absorbed, never a give-up, and the per-processor rows
// sum to the total.
func TestRetryCountersThroughReport(t *testing.T) {
	for _, be := range backends {
		be := be
		t.Run(be.name, func(t *testing.T) {
			plan := cool.NewFaultPlan().FailTask("flaky", 1)
			rt, err := cool.NewRuntime(cool.Config{
				Processors: 4,
				Backend:    be.b,
				Faults:     plan,
				Retry:      &cool.RetryPolicy{MaxAttempts: 3},
			})
			if err != nil {
				t.Fatal(err)
			}
			err = rt.Run(func(ctx *cool.Ctx) {
				ctx.WaitFor(func() {
					for i := 0; i < 8; i++ {
						ctx.Spawn("flaky", func(c *cool.Ctx) { c.Compute(10) })
					}
				})
			})
			if err != nil {
				t.Fatal(err)
			}
			r := rt.Report()
			if r.Total.TasksRun != 9 {
				t.Errorf("TasksRun = %d, want 9 (8 spawns + main, each exactly once)", r.Total.TasksRun)
			}
			if r.Total.Retries == 0 {
				t.Error("fault plan injected transient failures but Report shows Retries = 0")
			}
			if r.Total.GaveUp != 0 {
				t.Errorf("run succeeded but Report shows GaveUp = %d", r.Total.GaveUp)
			}
			var perRetries int64
			for _, p := range r.Per {
				perRetries += p.Retries
			}
			if perRetries != r.Total.Retries {
				t.Errorf("per-processor Retries sum %d != total %d", perRetries, r.Total.Retries)
			}
		})
	}
}

// TestFaultCountersThroughReportNative injects a stall and a worker
// failure into a native run and asserts the fault-path counters Report
// exposes are consistent with the plan: both events counted, the run
// still executes every task exactly once, and retirement never splits a
// task-affinity set. (The simulator side of this contract is covered by
// the root fault tests; this is the native half ISSUE 6 adds.)
func TestFaultCountersThroughReportNative(t *testing.T) {
	const tasks = 200
	plan := cool.NewFaultPlan().
		StallProcessor(2, 0, 100_000).
		FailProcessor(1, 300_000)
	rt, err := cool.NewRuntime(cool.Config{
		Processors: 4,
		Backend:    cool.BackendNative,
		Faults:     plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	set := rt.NewI64(8, 0)
	err = rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			for i := 0; i < tasks; i++ {
				ctx.Spawn("work", func(c *cool.Ctx) {
					// Keep the run in the milliseconds so the 300µs
					// failure lands mid-flight.
					time.Sleep(30 * time.Microsecond)
				}, cool.TaskAffinity(set.Addr(i%8)))
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rt.Report()
	if r.Total.TasksRun != tasks+1 {
		t.Errorf("TasksRun = %d, want %d", r.Total.TasksRun, tasks+1)
	}
	// The stall is due at t=0 and must fire; the failure is due well
	// inside the run's minimum duration (200 tasks x 30µs on 4 workers).
	if r.Total.FaultEvents < 2 {
		t.Errorf("FaultEvents = %d, want >= 2 (stall + proc-fail)", r.Total.FaultEvents)
	}
	if r.Total.Retries != 0 || r.Total.GaveUp != 0 {
		t.Errorf("plan has no transient faults but Retries=%d GaveUp=%d",
			r.Total.Retries, r.Total.GaveUp)
	}
	if r.SetSplits != 0 {
		t.Errorf("SetSplits = %d, want 0 after retirement", r.SetSplits)
	}
}

// TestRedistributedCounterThroughReportNative retires a worker whose
// queue is provably deep — every task is pinned to it and each body far
// outlasts the spawn loop — so the retirement drain itself must move
// work and count it on the victim's row. (The plan-consistency test
// above can legitimately see Redistributed == 0: tasks spawned after
// the dead bit lands are rerouted at insert time, which is placement,
// not redistribution.)
func TestRedistributedCounterThroughReportNative(t *testing.T) {
	const tasks = 80
	rt, err := cool.NewRuntime(cool.Config{
		Processors: 4,
		Backend:    cool.BackendNative,
		Faults:     cool.NewFaultPlan().FailProcessor(3, 1_000_000),
	})
	if err != nil {
		t.Fatal(err)
	}
	err = rt.Run(func(ctx *cool.Ctx) {
		ctx.WaitFor(func() {
			for i := 0; i < tasks; i++ {
				ctx.Spawn("pinned", func(*cool.Ctx) {
					// 80 x 200µs serialized on one worker ≫ the 1ms
					// failure time: the queue cannot drain first.
					time.Sleep(200 * time.Microsecond)
				}, cool.OnProcessor(3))
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rt.Report()
	if r.Total.TasksRun != tasks+1 {
		t.Errorf("TasksRun = %d, want %d", r.Total.TasksRun, tasks+1)
	}
	if r.Total.Redistributed == 0 {
		t.Error("Redistributed = 0, want > 0 (deep pinned queue drained at retirement)")
	}
	if got := r.Per[3].Redistributed; got != r.Total.Redistributed {
		t.Errorf("victim row Redistributed = %d, want all %d (counted on the retired worker)",
			got, r.Total.Redistributed)
	}
	if r.SetSplits != 0 {
		t.Errorf("SetSplits = %d, want 0", r.SetSplits)
	}
}
